#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rw_gate.h"
#include "core/engine.h"
#include "exec/physical_plan.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// The serving layer's pinning contract: a shared_ptr<const PreparedQuery>
/// obtained once keeps executing *correctly* across data-only Apply()
/// batches — including when the cache entry behind it is invalidated or
/// thrown away — because the plan binds live AccessIndices whose mirrors
/// are patched (or lazily rebuilt) in place. These tests pin that, row for
/// row, against a freshly prepared plan over the same live indices.

using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;  // Identical row streams either path.
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(PinnedPlanTest, PinnedExecutionSurvivesCacheClearAndDataDeltas) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(1));
  ASSERT_TRUE(engine.BuildIndices().ok());

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(1));
  Result<std::shared_ptr<const PreparedQuery>> pin = engine.PrepareCompiled(q);
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  ASSERT_TRUE((*pin)->info.covered);

  // Throw the cache entry away entirely: the pin must not care.
  engine.ClearPlanCache();
  for (int b = 0; b < 30; ++b) {
    Result<MaintenanceStats> st = engine.Apply(GraphChurnBatch(fx.cfg, "pp", b));
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ(st->constraints_grown, 0u);
    Result<ExecuteResult> got = engine.ExecutePrepared(**pin);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->used_bounded_plan);
    ExpectRowForRowEqual(got->table, FreshlyPreparedAnswer(engine, q, 1),
                         "batch " + std::to_string(b));
  }
  // Data-only churn below every patch budget keeps the pin coherent too
  // (the cache *would* still serve it, had we not cleared it).
  EXPECT_TRUE(engine.StillCoherent(**pin));
}

TEST(PinnedPlanTest, PinnedExecutionCorrectAfterMirrorRebuild) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(1));
  ASSERT_TRUE(engine.BuildIndices().ok());

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(2));
  ASSERT_TRUE(engine.Execute(q).ok());  // Warm the cache.
  Result<std::shared_ptr<const PreparedQuery>> pin = engine.PrepareCompiled(q);
  ASSERT_TRUE(pin.ok());
  ASSERT_FALSE((*pin)->bound_indices.empty());

  // Churn until some bound index blows its patch budget and schedules a
  // full mirror rebuild: the pin turns incoherent (the cache would
  // re-prepare), yet execution through it must stay correct — the rebuild
  // is just paid by the next execution that probes the relation.
  int b = 0;
  while (engine.StillCoherent(**pin) && b < 5000) {
    Result<MaintenanceStats> st =
        engine.Apply(GraphChurnBatch(fx.cfg, "mb", b++));
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }
  ASSERT_FALSE(engine.StillCoherent(**pin))
      << "churn never blew a patch budget (fixture too large?)";

  Result<ExecuteResult> got = engine.ExecutePrepared(**pin);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectRowForRowEqual(got->table, FreshlyPreparedAnswer(engine, q, 1),
                       "post-rebuild pinned execution");

  // The cache path, by contrast, re-prepares exactly once for this query.
  uint64_t reprepares0 = engine.plan_cache_stats().reprepares;
  Result<ExecuteResult> via_cache = engine.Execute(q);
  ASSERT_TRUE(via_cache.ok());
  EXPECT_FALSE(via_cache->plan_cache_hit);
  EXPECT_EQ(engine.plan_cache_stats().reprepares, reprepares0 + 1);
  ExpectRowForRowEqual(via_cache->table, got->table, "cache vs pin");
}

TEST(PinnedPlanTest, ConcurrentPinnedExecutionAcrossApplyBatches) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  std::vector<RaExprPtr> queries;
  std::vector<std::shared_ptr<const PreparedQuery>> pins;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
    Result<std::shared_ptr<const PreparedQuery>> pin =
        engine.PrepareCompiled(queries.back());
    ASSERT_TRUE(pin.ok());
    pins.push_back(*pin);
  }
  // Pinned serving across concurrent writes: readers never touch the plan
  // cache (ExecutePrepared), the writer goes through the gate.
  engine.ClearPlanCache();

  WriterPriorityGate gate;
  constexpr int kWriterBatches = 40;
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int b = 0; b < kWriterBatches; ++b) {
      while (executed.load() < b && !failed.load()) std::this_thread::yield();
      std::unique_lock<WriterPriorityGate> lk(gate);
      Result<MaintenanceStats> st = engine.Apply(GraphChurnBatch(fx.cfg, "cp", b));
      if (!st.ok() || st->constraints_grown != 0) failed.store(true);
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!done.load()) {
        std::shared_lock<WriterPriorityGate> lk(gate);
        Result<ExecuteResult> r = engine.ExecutePrepared(*pins[i++ % pins.size()]);
        if (!r.ok() || !r->used_bounded_plan) failed.store(true);
        executed.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(executed.load(), 0);

  // Zero cache traffic during the storm, and post-delta pinned answers
  // match fresh preparations row for row.
  PlanCacheStats stats = engine.plan_cache_stats();
  for (size_t i = 0; i < pins.size(); ++i) {
    Result<ExecuteResult> got = engine.ExecutePrepared(*pins[i]);
    ASSERT_TRUE(got.ok());
    ExpectRowForRowEqual(got->table, FreshlyPreparedAnswer(engine, queries[i], 2),
                         "post-storm pin " + std::to_string(i));
  }
  PlanCacheStats after = engine.plan_cache_stats();
  EXPECT_EQ(stats.hits, after.hits);
  EXPECT_EQ(stats.misses, after.misses);
}

}  // namespace
}  // namespace bqe
