#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/physical_plan.h"
#include "serve/query_service.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// IVM-focused serving stress: a reader storm races a delta writer whose
/// batches contain *deletions* (GraphChurnMixedBatch) and subtrahend churn
/// (GraphChurnJuneBatch against a resident difference query), so the
/// in-gate ResultCache::Refresh() exercises both the patch path and the
/// kNotMaintainable fallback while lock-free admission lookups run — the
/// TSan shape for exec/ivm layered under serve/. Afterwards every answer
/// the service hands out must equal a freshly prepared plan as an exact
/// bag and an uncached oracle engine as a set, and a serial coda proves
/// deterministically that (a) a refreshed entry serves a marked refreshed
/// hit and (b) a subtrahend deletion forces exactly the fallback counter.

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsMayNotJuneCafesQuery;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::GraphChurnJuneBatch;
using workload::GraphChurnMixedBatch;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(IvmStressTest, RefreshAndFallbackStayCoherentUnderReaderStorm) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 30;
  constexpr int kStormBatches = 20;  // Alternating mixed / june batches.

  // Four plain fetch/join queries plus one *difference* query whose
  // subtrahend the june batches delete from — the delta shape IVM must
  // refuse, landing mid-storm on a resident maintained entry.
  std::vector<RaExprPtr> hot;
  for (int i = 0; i < 4; ++i) hot.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  hot.push_back(FriendsMayNotJuneCafesQuery(fx.cfg.Pid(0)));

  ServiceOptions sopts;
  sopts.shards = 3;
  sopts.batch_window = 16;
  // Maintenance handles retain intermediate join bags (~0.5 MiB each for
  // these 3-relation queries); budget so all five hot entries stay
  // resident.
  sopts.result_cache_bytes = 8u << 20;
  QueryService service(&engine, sopts);

  // Warm every fingerprint so the storm starts with maintained entries.
  for (const RaExprPtr& q : hot) {
    QueryResponse r = service.Query(q);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_TRUE(r.used_bounded_plan);
  }

  std::atomic<int> answered{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t qi = static_cast<size_t>(c + i) % hot.size();
        QueryResponse r = service.Query(hot[qi]);
        if (!r.status.ok() || !r.used_bounded_plan || r.table == nullptr) {
          failed.store(true);
        }
        answered.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int b = 0; b < kStormBatches; ++b) {
      while (answered.load() < b * 4 && !failed.load()) {
        std::this_thread::yield();
      }
      // Even batches: insert+delete churn through every fetch/join (stays
      // maintainable). Odd batches: june churn whose deletions (once the
      // lag fills) hit the difference query's subtrahend mid-storm.
      std::vector<Delta> batch =
          b % 2 == 0 ? GraphChurnMixedBatch(fx.cfg, "ivs", b / 2)
                     : GraphChurnJuneBatch(fx.cfg, b / 2);
      serve::DeltaResponse dr = service.ApplyDeltas(batch);
      if (!dr.status.ok() || dr.stats.constraints_grown != 0) {
        failed.store(true);
      }
    }
  });
  for (std::thread& t : clients) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // Every post-storm answer matches a freshly prepared plan as an exact
  // bag and an independent uncached engine as a set.
  EngineOptions uncached_opts = DeterministicOptions(2);
  uncached_opts.plan_cache = false;
  BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
  ASSERT_TRUE(oracle.BuildIndices().ok());
  for (size_t qi = 0; qi < hot.size(); ++qi) {
    QueryResponse r = service.Query(hot[qi]);
    ASSERT_TRUE(r.status.ok());
    std::string ctx = "post-storm query " + std::to_string(qi);
    ExpectSameBag(*r.table, FreshlyPreparedAnswer(engine, hot[qi], 2), ctx);
    Result<ExecuteResult> fresh = oracle.Execute(hot[qi]);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Table::SameSet(*r.table, fresh->table)) << ctx;
  }

  // Serial coda, deterministic regardless of storm timing. Support counts
  // mean a june deletion only falls back when it actually resurrects a
  // suppressed may row, and a fallback leaves the entry handle-less for
  // one execution (lazy rebuild) — so the coda (a) seeds an explicit
  // suppressed pair (a new friend of Pid(0) with both a may and a june
  // visit to a new nyc cafe), and (b) runs two batch+read rounds first,
  // which converge hot[0] and hot[4] to cached-fresh-with-handle from any
  // storm-exit state (absent, handle-less, or pending a deferred rebuild).
  // Deleting the seeded june row is then a guaranteed resurrection: the
  // refresh MUST refuse into exactly the fallback counter, while hot[0]
  // absorbs the same batch and MUST serve a marked refreshed hit.
  serve::DeltaResponse seed = service.ApplyDeltas({
      Delta::Insert("friend", {Value::Str(fx.cfg.Pid(0)), Value::Str("coda-f")}),
      Delta::Insert("cafe", {Value::Str("codacafe"), Value::Str("nyc")}),
      Delta::Insert("dine", {Value::Str("coda-f"), Value::Str("codacafe"),
                             Value::Int(5), Value::Int(2015)}),
      Delta::Insert("dine", {Value::Str("coda-f"), Value::Str("codacafe"),
                             Value::Int(6), Value::Int(2015)}),
  });
  ASSERT_TRUE(seed.status.ok());
  (void)service.Query(hot[0]);
  (void)service.Query(hot[4]);
  serve::DeltaResponse settle =
      service.ApplyDeltas(GraphChurnMixedBatch(fx.cfg, "coda", 0));
  ASSERT_TRUE(settle.status.ok());
  (void)service.Query(hot[0]);
  (void)service.Query(hot[4]);
  uint64_t fallbacks_before = service.stats().result_cache.refresh_fallbacks;
  std::vector<Delta> coda = GraphChurnJuneBatch(fx.cfg, kStormBatches / 2);
  coda.push_back(Delta::Delete("dine", {Value::Str("coda-f"),
                                        Value::Str("codacafe"), Value::Int(6),
                                        Value::Int(2015)}));
  serve::DeltaResponse dr = service.ApplyDeltas(coda);
  ASSERT_TRUE(dr.status.ok());
  QueryResponse refreshed_read = service.Query(hot[0]);
  ASSERT_TRUE(refreshed_read.status.ok());
  EXPECT_TRUE(refreshed_read.result_cache_hit);
  EXPECT_TRUE(refreshed_read.result_refreshed);
  ExpectSameBag(*refreshed_read.table, FreshlyPreparedAnswer(engine, hot[0], 2),
                "refreshed coda read");
  ServiceStats s = service.stats();
  EXPECT_GE(s.result_cache.refresh_fallbacks, fallbacks_before + 1)
      << "a resurrecting subtrahend deletion on a resident difference entry "
         "must fall back to invalidate-and-recompute";
  EXPECT_GE(s.result_cache.resurrection_fallbacks, 1u)
      << "the coda deletion zeroes a support count while its may row is "
         "suppressed — it must be classified as a resurrection";
  QueryResponse diff_read = service.Query(hot[4]);  // Recompute, not a hit.
  ASSERT_TRUE(diff_read.status.ok());
  ExpectSameBag(*diff_read.table, FreshlyPreparedAnswer(engine, hot[4], 2),
                "post-fallback diff read");

  s = service.stats();
  service.Shutdown();

  constexpr uint64_t kTotalQueries =
      static_cast<uint64_t>(kClients) * kRequestsPerClient +
      /*warmup=*/5 + /*post-storm=*/5 + /*coda reads=*/6;
  constexpr uint64_t kTotalBatches = static_cast<uint64_t>(kStormBatches) + 3;
  // Exact five-way accounting under mixed refresh/fallback churn.
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window + s.result_hits_refreshed,
            kTotalQueries);
  EXPECT_LE(s.admitted + s.result_hits_admission, kTotalQueries + kTotalBatches);
  EXPECT_GE(s.admitted + s.result_hits_admission + s.result_hits_refreshed,
            kTotalQueries + kTotalBatches);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.result_hits_refreshed, 0u);
  EXPECT_GT(s.result_cache.refreshes, 0u);
  EXPECT_GE(s.result_cache.refresh_fallbacks, 1u);
  EXPECT_EQ(s.result_cache.hits, s.result_hits_admission +
                                     s.result_hits_window +
                                     s.result_hits_refreshed);
  EXPECT_EQ(s.delta_batches, kTotalBatches);
  // Data-only churn: pinned plans never re-prepared, schema epoch fixed.
  EXPECT_EQ(s.engine.reprepares, 0u);
  EXPECT_EQ(s.schema_epoch, 1u);
}

}  // namespace
}  // namespace bqe
