#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "constraints/index.h"
#include "exec/column_batch.h"
#include "exec/key_codec.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace bqe {
namespace {

Tuple Row(std::initializer_list<Value> vs) { return Tuple(vs); }

BatchVec MakeBatches(const std::vector<Tuple>& rows,
                     const std::vector<ValueType>& types, size_t batch_size) {
  return TuplesToBatches(rows, types, batch_size);
}

TEST(ColumnBatchTest, RoundTripsTuplesAcrossBatchBoundaries) {
  std::vector<ValueType> types = {ValueType::kInt, ValueType::kString,
                                  ValueType::kDouble};
  std::vector<Tuple> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back(Row({Value::Int(i), Value::Str("s" + std::to_string(i % 3)),
                        Value::Double(i * 0.5)}));
  }
  rows.push_back(Row({Value::Null(), Value::Null(), Value::Null()}));

  BatchVec batches = MakeBatches(rows, types, 4);
  EXPECT_EQ(batches.size(), 3u);  // 4 + 4 + 3 rows.
  EXPECT_EQ(TotalRows(batches), rows.size());
  std::vector<Tuple> back = BatchesToTuples(batches);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(back[i], rows[i]);
}

TEST(ColumnBatchTest, StringDictInternsOnce) {
  StringDict dict;
  int32_t a = dict.Intern("hello");
  int32_t b = dict.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("hello"), a);
  EXPECT_EQ(dict.At(a), "hello");
  EXPECT_EQ(dict.At(b), "world");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ColumnBatchTest, NullTrackingSurvivesBulkGathers) {
  std::vector<ValueType> types = {ValueType::kInt};
  ColumnBatch src(types);
  src.AppendTuple(Row({Value::Int(1)}));
  src.AppendTuple(Row({Value::Null()}));
  src.AppendTuple(Row({Value::Int(3)}));
  EXPECT_FALSE(src.col(0).NoNulls());

  // Index gather keeps validity and the null count.
  ColumnBatch dst(types);
  std::vector<uint32_t> sel = {0, 1, 2, 1};
  dst.GatherRowsFrom(src, sel.data(), sel.size(), {});
  EXPECT_FALSE(dst.col(0).NoNulls());
  EXPECT_EQ(dst.RowToTuple(1)[0], Value::Null());
  EXPECT_EQ(dst.RowToTuple(3)[0], Value::Null());
  EXPECT_EQ(dst.RowToTuple(2)[0], Value::Int(3));

  // Range gather of the all-valid prefix is recognized as null-free only
  // when the *source column* is null-free; here it is not, so validity is
  // still copied row-by-row and stays exact.
  ColumnBatch range(types);
  range.GatherRangeFrom(src, 0, 1);
  EXPECT_TRUE(range.col(0).NoNulls());
  EXPECT_EQ(range.RowToTuple(0)[0], Value::Int(1));

  // All-valid source takes the bit-blit path.
  ColumnBatch clean(types);
  clean.AppendTuple(Row({Value::Int(7)}));
  clean.AppendTuple(Row({Value::Int(8)}));
  ColumnBatch out(types);
  out.GatherRangeFrom(clean, 0, 2);
  EXPECT_TRUE(out.col(0).NoNulls());
  EXPECT_EQ(out.RowToTuple(1)[0], Value::Int(8));
}

TEST(ColumnBatchTest, OffTypeCellsSurviveGathers) {
  // A cell whose runtime type differs from the declared column type must
  // keep its runtime type through the generic gather path (same contract as
  // AppendValue), not be silently coerced to the declared type.
  std::vector<ValueType> types = {ValueType::kString};
  ColumnBatch src(types);
  src.AppendTuple(Row({Value::Str("s")}));
  src.AppendTuple(Row({Value::Int(5)}));  // Off-type: int in a string column.
  ASSERT_TRUE(src.col(0).has_off_type());

  ColumnBatch dst(types);
  std::vector<uint32_t> sel = {1, 0};
  dst.GatherRowsFrom(src, sel.data(), sel.size(), {});
  EXPECT_EQ(dst.RowToTuple(0)[0], Value::Int(5));
  EXPECT_EQ(dst.RowToTuple(1)[0], Value::Str("s"));

  ColumnBatch range(types);
  range.GatherRangeFrom(src, 0, 2);
  EXPECT_EQ(range.RowToTuple(0)[0], Value::Str("s"));
  EXPECT_EQ(range.RowToTuple(1)[0], Value::Int(5));
}

TEST(ColumnBatchTest, RowConcatAndRowFromShims) {
  std::vector<ValueType> lt = {ValueType::kInt};
  std::vector<ValueType> rt = {ValueType::kString};
  ColumnBatch l(lt), r(rt);
  l.AppendTuple(Row({Value::Int(1)}));
  r.AppendTuple(Row({Value::Str("x")}));

  ColumnBatch joined(std::vector<ValueType>{ValueType::kInt,
                                            ValueType::kString});
  joined.AppendRowConcat(l, 0, r, 0);
  EXPECT_EQ(joined.RowToTuple(0), Row({Value::Int(1), Value::Str("x")}));

  ColumnBatch projected(rt);
  projected.AppendRowFrom(joined, 0, {1});
  EXPECT_EQ(projected.RowToTuple(0), Row({Value::Str("x")}));
}

TEST(TableBatchShimTest, ScanAndAppendRoundTrip) {
  RelationSchema schema("t", {Attribute{"a", ValueType::kInt},
                              Attribute{"b", ValueType::kString}});
  Table t(schema);
  for (int i = 0; i < 5; ++i) {
    t.InsertUnchecked(Row({Value::Int(i), Value::Str("v" + std::to_string(i))}));
  }

  BatchVec batches = t.ScanBatches(/*batch_size=*/2);
  EXPECT_EQ(batches.size(), 3u);
  EXPECT_EQ(TotalRows(batches), 5u);

  Table back(schema);
  for (const ColumnBatch& b : batches) {
    ASSERT_TRUE(back.AppendBatch(b).ok());
  }
  EXPECT_TRUE(Table::SameSet(t, back));

  // Arity mismatch is rejected.
  ColumnBatch wrong(std::vector<ValueType>{ValueType::kInt});
  wrong.AppendTuple(Row({Value::Int(1)}));
  EXPECT_FALSE(back.AppendBatch(wrong).ok());
}

TEST(AccessIndexBatchTest, FetchIntoMatchesFetch) {
  RelationSchema schema("rel", {Attribute{"x", ValueType::kInt},
                                Attribute{"y", ValueType::kString}});
  Table t(schema);
  t.InsertUnchecked(Row({Value::Int(1), Value::Str("a")}));
  t.InsertUnchecked(Row({Value::Int(1), Value::Str("b")}));
  t.InsertUnchecked(Row({Value::Int(2), Value::Str("c")}));

  Result<AccessConstraint> c = AccessConstraint::Parse("rel((x) -> (y), 10)");
  ASSERT_TRUE(c.ok());
  Result<AccessIndex> idx = AccessIndex::Build(t, *c);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();

  Tuple key = Row({Value::Int(1)});
  uint64_t accessed = 0;
  std::vector<Tuple> via_tuples = idx->Fetch(key, &accessed);
  ASSERT_EQ(via_tuples.size(), 2u);
  EXPECT_EQ(accessed, 2u);

  ColumnBatch out(idx->output_types());
  uint64_t batch_accessed = 0;
  EXPECT_EQ(idx->FetchInto(key, &out, &batch_accessed), 2u);
  EXPECT_EQ(batch_accessed, 2u);
  EXPECT_EQ(BatchesToTuples({out}), via_tuples);

  EXPECT_EQ(idx->FetchInto(Row({Value::Int(99)}), &out, nullptr), 0u);
}

TEST(KeyCodecTest, EncodingIsInjectiveAcrossColumnBoundaries) {
  // ("ab", "c") and ("a", "bc") must encode differently — the length prefix
  // makes multi-column keys collision-free.
  std::vector<ValueType> types = {ValueType::kString, ValueType::kString};
  ColumnBatch b(types);
  b.AppendTuple(Row({Value::Str("ab"), Value::Str("c")}));
  b.AppendTuple(Row({Value::Str("a"), Value::Str("bc")}));
  KeyEncoder enc;
  enc.Encode(b, {});
  EXPECT_NE(enc.Key(0), enc.Key(1));
}

TEST(KeyCodecTest, EncodingMatchesValueEquality) {
  std::vector<ValueType> types = {ValueType::kDouble};
  ColumnBatch b(types);
  b.AppendTuple(Row({Value::Double(0.0)}));
  b.AppendTuple(Row({Value::Double(-0.0)}));
  b.AppendTuple(Row({Value::Double(1.5)}));
  KeyEncoder enc;
  enc.Encode(b, {});
  // -0.0 == 0.0 under Value comparison, so the encodings must collide.
  EXPECT_EQ(enc.Key(0), enc.Key(1));
  EXPECT_NE(enc.Key(0), enc.Key(2));
}

TEST(KeyCodecTest, BatchEncoderAgreesWithPerRowEncoder) {
  std::vector<ValueType> types = {ValueType::kInt, ValueType::kString};
  ColumnBatch b(types);
  b.AppendTuple(Row({Value::Int(42), Value::Str("x")}));
  b.AppendTuple(Row({Value::Null(), Value::Str("")}));
  b.AppendTuple(Row({Value::Int(-1), Value::Null()}));
  KeyEncoder enc;
  enc.Encode(b, {});
  for (size_t i = 0; i < b.num_rows(); ++i) {
    std::string expect;
    AppendEncodedKey(b, i, {}, &expect);
    EXPECT_EQ(enc.Key(i), expect) << "row " << i;
    std::string via_tuple;
    AppendEncodedTuple(b.RowToTuple(i), &via_tuple);
    EXPECT_EQ(enc.Key(i), via_tuple) << "row " << i;
  }
}

TEST(KeyTableTest, AssignsDenseGroupsInInsertionOrder) {
  KeyTable t;
  bool inserted = false;
  EXPECT_EQ(t.InsertOrFind("a", &inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.InsertOrFind("b", &inserted), 1u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.InsertOrFind("a", &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(t.Find("b"), 1u);
  EXPECT_EQ(t.Find("zzz"), KeyTable::kNoGroup);
  EXPECT_EQ(t.NumGroups(), 2u);
}

TEST(OperatorsTest, ProductEmitsLeftOuterLoopOrder) {
  std::vector<ValueType> lt = {ValueType::kInt}, rt = {ValueType::kString};
  BatchVec left = MakeBatches({Row({Value::Int(1)}), Row({Value::Int(2)}),
                               Row({Value::Int(3)})},
                              lt, 2);
  BatchVec right =
      MakeBatches({Row({Value::Str("a")}), Row({Value::Str("b")})}, rt, 1);
  std::vector<ValueType> out_types = {ValueType::kInt, ValueType::kString};
  // batch_size 4 forces output-batch splits mid-left-row stream.
  BatchVec out = ProductOp(left, right, out_types, 4);
  std::vector<Tuple> rows = BatchesToTuples(out);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0], Row({Value::Int(1), Value::Str("a")}));
  EXPECT_EQ(rows[1], Row({Value::Int(1), Value::Str("b")}));
  EXPECT_EQ(rows[4], Row({Value::Int(3), Value::Str("a")}));
  EXPECT_EQ(rows[5], Row({Value::Int(3), Value::Str("b")}));
  for (const ColumnBatch& b : out) EXPECT_LE(b.num_rows(), 4u);
}

TEST(OperatorsTest, HashJoinMatchesOnEncodedKeys) {
  std::vector<ValueType> lt = {ValueType::kInt, ValueType::kString};
  std::vector<ValueType> rt = {ValueType::kInt, ValueType::kDouble};
  BatchVec left = MakeBatches({Row({Value::Int(1), Value::Str("a")}),
                               Row({Value::Int(2), Value::Str("b")}),
                               Row({Value::Int(3), Value::Str("c")})},
                              lt, 2);
  BatchVec right = MakeBatches({Row({Value::Int(2), Value::Double(2.5)}),
                                Row({Value::Int(1), Value::Double(1.5)}),
                                Row({Value::Int(2), Value::Double(9.5)})},
                               rt, 2);
  std::vector<ValueType> out_types = {ValueType::kInt, ValueType::kString,
                                      ValueType::kInt, ValueType::kDouble};
  BatchVec out = HashJoinOp(left, right, {{0, 0}}, out_types, 1024);
  std::vector<Tuple> rows = BatchesToTuples(out);
  ASSERT_EQ(rows.size(), 3u);
  // Probe order (left), then build-insertion order within a key group.
  EXPECT_EQ(rows[0], Row({Value::Int(1), Value::Str("a"), Value::Int(1),
                          Value::Double(1.5)}));
  EXPECT_EQ(rows[1], Row({Value::Int(2), Value::Str("b"), Value::Int(2),
                          Value::Double(2.5)}));
  EXPECT_EQ(rows[2], Row({Value::Int(2), Value::Str("b"), Value::Int(2),
                          Value::Double(9.5)}));
}

TEST(OperatorsTest, HashJoinWithNoKeysIsCrossJoin) {
  // join[] (empty key list) must behave like the row path: every pair
  // matches. It must NOT hit the encoder, whose empty-cols convention means
  // "all columns" (that would join on full-row equality — regression caught
  // by examples/airline_delay.cpp).
  std::vector<ValueType> t = {ValueType::kInt};
  BatchVec left =
      MakeBatches({Row({Value::Int(1)}), Row({Value::Int(2)})}, t, 2);
  BatchVec right =
      MakeBatches({Row({Value::Int(2)}), Row({Value::Int(9)})}, t, 2);
  std::vector<ValueType> out_types = {ValueType::kInt, ValueType::kInt};
  std::vector<Tuple> rows =
      BatchesToTuples(HashJoinOp(left, right, {}, out_types, 1024));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], Row({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(rows[3], Row({Value::Int(2), Value::Int(9)}));
}

TEST(OperatorsTest, ZeroColumnProjection) {
  std::vector<ValueType> t = {ValueType::kInt};
  BatchVec in =
      MakeBatches({Row({Value::Int(1)}), Row({Value::Int(2)})}, t, 2);
  std::vector<Tuple> plain =
      BatchesToTuples(ProjectOp(in, {}, /*dedupe=*/false, {}, 1024));
  ASSERT_EQ(plain.size(), 2u);
  EXPECT_TRUE(plain[0].empty());
  std::vector<Tuple> deduped =
      BatchesToTuples(ProjectOp(in, {}, /*dedupe=*/true, {}, 1024));
  ASSERT_EQ(deduped.size(), 1u);
  EXPECT_TRUE(deduped[0].empty());
}

TEST(OperatorsTest, UnionAndDiffAreSets) {
  std::vector<ValueType> t = {ValueType::kInt};
  BatchVec a = MakeBatches(
      {Row({Value::Int(1)}), Row({Value::Int(2)}), Row({Value::Int(2)})}, t, 2);
  BatchVec b =
      MakeBatches({Row({Value::Int(2)}), Row({Value::Int(3)})}, t, 2);
  std::vector<Tuple> u = BatchesToTuples(UnionOp(a, b, t, 1024));
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0], Row({Value::Int(1)}));
  EXPECT_EQ(u[1], Row({Value::Int(2)}));
  EXPECT_EQ(u[2], Row({Value::Int(3)}));

  std::vector<Tuple> d = BatchesToTuples(DiffOp(a, b, t, 1024));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Row({Value::Int(1)}));
}

TEST(OperatorsTest, ProjectDedupeKeepsFirstOccurrence) {
  std::vector<ValueType> t = {ValueType::kInt, ValueType::kString};
  BatchVec in = MakeBatches({Row({Value::Int(1), Value::Str("x")}),
                             Row({Value::Int(2), Value::Str("x")}),
                             Row({Value::Int(1), Value::Str("y")})},
                            t, 2);
  std::vector<ValueType> out_t = {ValueType::kString};
  std::vector<Tuple> rows =
      BatchesToTuples(ProjectOp(in, {1}, /*dedupe=*/true, out_t, 1024));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], Row({Value::Str("x")}));
  EXPECT_EQ(rows[1], Row({Value::Str("y")}));
}

}  // namespace
}  // namespace bqe
