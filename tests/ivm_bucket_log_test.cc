#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "constraints/index.h"
#include "core/engine.h"
#include "exec/physical_plan.h"
#include "serve/query_service.h"
#include "storage/database.h"
#include "testutil.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Tests of the AccessIndex bucket patch log — the per-bucket signed
/// mutation stream IVM refresh replays instead of re-resolving whole
/// buckets — and of its lifecycle coupling to the frozen mirror: stamps
/// advance exactly on distinct-entry transitions, PatchLogSince replays
/// exactly the [stamp, now) window, and a budget-forced mirror rebuild
/// truncates the log so consumers detect the loss and fall back wholesale.
/// Ends with a serving-layer reader storm racing index-side churn under a
/// tiny patch budget, so both the log-replay and the truncation-fallback
/// refresh paths run under TSan against concurrent lock-free lookups.

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnFixture;
using workload::GraphChurnMixedBatch;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

class BucketLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = testutil::MakeGraphSearch();
    const Table* dine = fx_.db.Require("dine").value();
    AccessConstraint c =
        AccessConstraint::Parse("dine((pid) -> (cid, month), 64)").value();
    c.id = 0;
    Result<AccessIndex> idx = AccessIndex::Build(*dine, c);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    idx_ = std::make_unique<AccessIndex>(std::move(*idx));
  }

  Tuple Row(const char* pid, const char* cid, int64_t month, int64_t year) {
    return {Value::Str(pid), Value::Str(cid), Value::Int(month),
            Value::Int(year)};
  }

  testutil::GraphSearchFixture fx_;
  std::unique_ptr<AccessIndex> idx_;
};

TEST_F(BucketLogTest, StampAdvancesOnlyOnDistinctTransitions) {
  idx_->EnsureFrozen();
  uint64_t s0 = idx_->patch_log_stamp();
  // New key: a distinct entry appears — one logged event.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f9", "c9", 3, 2016)).ok());
  EXPECT_EQ(idx_->patch_log_stamp(), s0 + 1);
  // Refcount-only traffic (duplicate insert, non-final delete of the
  // (f1, c1, 5) entry that now has two supporting rows) must not log:
  // the distinct row set — what Fetch() returns, what IVM retains — did
  // not change.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c1", 5, 2017)).ok());
  EXPECT_EQ(idx_->patch_log_stamp(), s0 + 1);
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c1", 5, 2017)).ok());
  EXPECT_EQ(idx_->patch_log_stamp(), s0 + 1);

  std::vector<BucketPatch> events;
  ASSERT_TRUE(idx_->PatchLogSince(s0, &events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sign, 1);
  EXPECT_EQ(events[0].key, Tuple{Value::Str("f9")});
  // The logged row is exactly the bucket entry Fetch() hands out, so a
  // consumer's retained bucket and the replayed events share an encoding.
  std::vector<Tuple> bucket = idx_->Fetch({Value::Str("f9")});
  ASSERT_EQ(bucket.size(), 1u);
  EXPECT_EQ(events[0].row, bucket[0]);

  // Final delete: the entry disappears — one sign -1 event.
  ASSERT_TRUE(idx_->ApplyDelete(Row("f9", "c9", 3, 2016)).ok());
  EXPECT_EQ(idx_->patch_log_stamp(), s0 + 2);
  events.clear();
  ASSERT_TRUE(idx_->PatchLogSince(s0 + 1, &events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sign, -1);
  EXPECT_EQ(events[0].key, Tuple{Value::Str("f9")});
}

TEST_F(BucketLogTest, PatchLogSinceReplaysExactlyTheWindow) {
  idx_->EnsureFrozen();
  uint64_t s0 = idx_->patch_log_stamp();
  ASSERT_TRUE(idx_->ApplyInsert(Row("a", "c1", 1, 2016)).ok());
  ASSERT_TRUE(idx_->ApplyInsert(Row("b", "c1", 1, 2016)).ok());
  uint64_t s1 = idx_->patch_log_stamp();
  ASSERT_TRUE(idx_->ApplyInsert(Row("c", "c1", 1, 2016)).ok());

  std::vector<BucketPatch> events;
  ASSERT_TRUE(idx_->PatchLogSince(s0, &events));
  ASSERT_EQ(events.size(), 3u);  // Application order.
  EXPECT_EQ(events[0].key, Tuple{Value::Str("a")});
  EXPECT_EQ(events[1].key, Tuple{Value::Str("b")});
  EXPECT_EQ(events[2].key, Tuple{Value::Str("c")});

  events.clear();
  ASSERT_TRUE(idx_->PatchLogSince(s1, &events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, Tuple{Value::Str("c")});

  // An up-to-date cursor replays nothing, successfully.
  events.clear();
  ASSERT_TRUE(idx_->PatchLogSince(idx_->patch_log_stamp(), &events));
  EXPECT_TRUE(events.empty());
}

TEST_F(BucketLogTest, BudgetForcedRebuildTruncatesTheLog) {
  idx_->set_mirror_patch_budget(1);
  EXPECT_EQ(idx_->mirror_patch_budget(), 1u);
  idx_->EnsureFrozen();
  uint64_t s0 = idx_->patch_log_stamp();
  // Three distinct transitions against a budget of one patch op: the third
  // mirror patch finds the budget blown and invalidates, which must
  // truncate the log — including the event logged for that very patch.
  for (int i = 0; i < 3; ++i) {
    std::string pid = "t" + std::to_string(i);
    ASSERT_TRUE(
        idx_->ApplyInsert({Value::Str(pid), Value::Str("c1"), Value::Int(1),
                           Value::Int(2016)})
            .ok());
  }
  std::vector<BucketPatch> events;
  EXPECT_FALSE(idx_->PatchLogSince(s0, &events));
  EXPECT_TRUE(events.empty());
  // Stamps keep advancing through the truncation: a consumer re-stamping
  // after its wholesale fallback resumes cleanly from "now".
  EXPECT_EQ(idx_->patch_log_stamp(), s0 + 3);

  // While the rebuild is still pending, further transitions keep the log
  // truncated — nobody holds a stamp the pending rebuild has not already
  // invalidated.
  uint64_t s1 = idx_->patch_log_stamp();
  ASSERT_TRUE(idx_->ApplyInsert(Row("t3", "c1", 1, 2016)).ok());
  events.clear();
  EXPECT_FALSE(idx_->PatchLogSince(s1, &events));

  // After the rebuild completes, logging re-engages and a post-rebuild
  // stamp replays again.
  uint64_t s2 = idx_->patch_log_stamp();
  idx_->EnsureFrozen();
  ASSERT_TRUE(idx_->ApplyInsert(Row("t4", "c1", 1, 2016)).ok());
  events.clear();
  ASSERT_TRUE(idx_->PatchLogSince(s2, &events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, Tuple{Value::Str("t4")});
}

TEST(BucketLogEngineTest, EngineOptionInstallsBudgetOnEveryIndex) {
  testutil::GraphSearchFixture fx = testutil::MakeGraphSearch();
  EngineOptions opts = DeterministicOptions(1);
  opts.mirror_patch_budget = 7;
  BoundedEngine engine(&fx.db, fx.schema, opts);
  ASSERT_TRUE(engine.BuildIndices().ok());
  for (int id : {fx.psi1, fx.psi2, fx.psi3, fx.psi4}) {
    const AccessIndex* idx = engine.indices().Get(id);
    ASSERT_NE(idx, nullptr);
    EXPECT_EQ(idx->mirror_patch_budget(), 7u);
  }
}

void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

/// The TSan shape for the patch-log refresh paths: a reader storm races a
/// delta writer while the engine runs under a patch budget small enough
/// that mirror rebuilds — and therefore log truncations — happen every few
/// batches. The in-gate ResultCache::Refresh() then alternates between
/// replaying bucket events and the wholesale refetch fallback while
/// lock-free admission lookups and scatter-style executions run
/// concurrently; every post-storm answer must still be exact.
TEST(BucketLogStressTest, PatchLogChurnStaysCoherentUnderReaderStorm) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  EngineOptions eopts = DeterministicOptions(2);
  eopts.mirror_patch_budget = 6;
  BoundedEngine engine(&fx.db, fx.schema, eopts);
  ASSERT_TRUE(engine.BuildIndices().ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 25;
  constexpr int kStormBatches = 16;

  std::vector<RaExprPtr> hot;
  for (int i = 0; i < 4; ++i) hot.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));

  ServiceOptions sopts;
  sopts.shards = 3;
  sopts.batch_window = 16;
  sopts.result_cache_bytes = 8u << 20;
  QueryService service(&engine, sopts);
  for (const RaExprPtr& q : hot) {
    QueryResponse r = service.Query(q);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_TRUE(r.used_bounded_plan);
  }

  // Mutual pacing, not just writer-side pacing: readers hammering a warm
  // cache finish in microseconds, so without a reader-side wait the whole
  // storm of hits can land before the first batch and nothing would ever
  // race. Each client paces its reads across the batch sequence and the
  // writer waits for reads between batches, so refreshes, truncations and
  // lookups genuinely interleave.
  std::atomic<int> answered{0};
  std::atomic<int> applied{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        int pace = i * kStormBatches / kRequestsPerClient;
        while (applied.load() < pace && !failed.load()) {
          std::this_thread::yield();
        }
        size_t qi = static_cast<size_t>(c + i) % hot.size();
        QueryResponse r = service.Query(hot[qi]);
        if (!r.status.ok() || !r.used_bounded_plan || r.table == nullptr) {
          failed.store(true);
        }
        answered.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int b = 0; b < kStormBatches; ++b) {
      while (answered.load() < b * 4 && !failed.load()) {
        std::this_thread::yield();
      }
      // Lag 5: from batch 5 on every batch carries deletions too, so the
      // log replays signed events in both directions.
      serve::DeltaResponse dr =
          service.ApplyDeltas(GraphChurnMixedBatch(fx.cfg, "blog", b, 5));
      if (!dr.status.ok() || dr.stats.constraints_grown != 0) {
        failed.store(true);
      }
      applied.fetch_add(1);
    }
  });
  for (std::thread& t : clients) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  EngineOptions uncached_opts = DeterministicOptions(2);
  uncached_opts.plan_cache = false;
  BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
  ASSERT_TRUE(oracle.BuildIndices().ok());
  for (size_t qi = 0; qi < hot.size(); ++qi) {
    QueryResponse r = service.Query(hot[qi]);
    ASSERT_TRUE(r.status.ok());
    std::string ctx = "post-storm query " + std::to_string(qi);
    ExpectSameBag(*r.table, FreshlyPreparedAnswer(engine, hot[qi], 2), ctx);
    Result<ExecuteResult> fresh = oracle.Execute(hot[qi]);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Table::SameSet(*r.table, fresh->table)) << ctx;
  }

  // Serial coda, deterministic regardless of storm timing: the post-storm
  // reads above re-cached every hot fingerprint with a maintenance handle
  // (second-execution-onward policy; these handles fit the budget), so one
  // more batch aimed squarely at hot[0]'s probed friend bucket must be
  // absorbed as a refresh whose index-side delta resolves either off the
  // patch log or — when the tiny budget truncated it — through the
  // wholesale refetch fallback.
  serve::ResultCacheStats before = service.stats().result_cache;
  auto S = [](const std::string& s) { return Value::Str(s); };
  std::vector<Delta> coda = {
      Delta::Insert("friend", {S(fx.cfg.Pid(0)), S("blog-coda")}),
      Delta::Insert("dine",
                    {S("blog-coda"), S("c0"), Value::Int(5), Value::Int(2015)}),
  };
  serve::DeltaResponse dr = service.ApplyDeltas(coda);
  ASSERT_TRUE(dr.status.ok());
  QueryResponse after_read = service.Query(hot[0]);
  ASSERT_TRUE(after_read.status.ok());
  ExpectSameBag(*after_read.table, FreshlyPreparedAnswer(engine, hot[0], 2),
                "coda read");

  serve::ServiceStats s = service.stats();
  service.Shutdown();
  EXPECT_GT(s.result_cache.refreshes, before.refreshes);
  EXPECT_GT(s.result_cache.bucket_diff_hits +
                s.result_cache.bucket_refetch_fallbacks,
            before.bucket_diff_hits + before.bucket_refetch_fallbacks);
}

}  // namespace
}  // namespace bqe
