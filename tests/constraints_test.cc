#include <gtest/gtest.h>

#include "constraints/access_constraint.h"
#include "constraints/access_schema.h"
#include "constraints/actualize.h"
#include "constraints/discovery.h"
#include "constraints/index.h"
#include "constraints/maintain.h"
#include "constraints/validate.h"
#include "ra/builder.h"
#include "ra/normalize.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ1;

// ------------------------------------------------------ AccessConstraint ---

TEST(AccessConstraintTest, ParseBasic) {
  Result<AccessConstraint> c =
      AccessConstraint::Parse("friend((pid) -> (fid), 5000)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->rel, "friend");
  EXPECT_EQ(c->x, std::vector<std::string>{"pid"});
  EXPECT_EQ(c->y, std::vector<std::string>{"fid"});
  EXPECT_EQ(c->n, 5000);
}

TEST(AccessConstraintTest, ParseMultiAttr) {
  Result<AccessConstraint> c =
      AccessConstraint::Parse("dine((pid, year, month) -> (cid), 31)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->x.size(), 3u);
  EXPECT_EQ(c->n, 31);
}

TEST(AccessConstraintTest, ParseEmptyLhs) {
  Result<AccessConstraint> c = AccessConstraint::Parse("r(() -> (month), 12)");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->x.empty());
  EXPECT_EQ(c->n, 12);
}

TEST(AccessConstraintTest, ParseWithoutInnerParens) {
  Result<AccessConstraint> c = AccessConstraint::Parse("r(a, b -> c, 7)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->x.size(), 2u);
  EXPECT_EQ(c->y.size(), 1u);
}

TEST(AccessConstraintTest, ToStringRoundTrips) {
  AccessConstraint c = *AccessConstraint::Parse("dine((pid,cid)->(pid,cid),1)");
  Result<AccessConstraint> again = AccessConstraint::Parse(c.ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->x, c.x);
  EXPECT_EQ(again->y, c.y);
  EXPECT_EQ(again->n, c.n);
}

TEST(AccessConstraintTest, ParseErrors) {
  EXPECT_FALSE(AccessConstraint::Parse("junk").ok());
  EXPECT_FALSE(AccessConstraint::Parse("r(a -> b)").ok());      // No N.
  EXPECT_FALSE(AccessConstraint::Parse("r(a, b, 5)").ok());     // No arrow.
  EXPECT_FALSE(AccessConstraint::Parse("r(a -> b, 0)").ok());   // N < 1.
  EXPECT_FALSE(AccessConstraint::Parse("r(a -> , 5)").ok());    // Empty Y.
}

TEST(AccessConstraintTest, Classification) {
  EXPECT_TRUE(AccessConstraint::Parse("r((a) -> (a), 1)")->IsIndexingConstraint());
  EXPECT_FALSE(AccessConstraint::Parse("r((a) -> (a), 2)")->IsIndexingConstraint());
  EXPECT_TRUE(AccessConstraint::Parse("r((a) -> (b), 9)")->IsUnitConstraint());
  EXPECT_FALSE(AccessConstraint::Parse("r((a,b) -> (c), 9)")->IsUnitConstraint());
}

// ---------------------------------------------------------- AccessSchema ---

TEST(AccessSchemaTest, AddValidatesAttributes) {
  auto fx = MakeGraphSearch(false);
  AccessSchema extra = fx.schema;
  AccessConstraint bad = *AccessConstraint::Parse("friend((nope) -> (fid), 5)");
  EXPECT_EQ(extra.Add(bad, fx.db.catalog()).code(),
            StatusCode::kInvalidArgument);
  AccessConstraint unknown_rel = *AccessConstraint::Parse("zzz((a) -> (b), 5)");
  EXPECT_EQ(extra.Add(unknown_rel, fx.db.catalog()).code(),
            StatusCode::kNotFound);
}

TEST(AccessSchemaTest, ForRelationAndTotals) {
  auto fx = MakeGraphSearch(false);
  EXPECT_EQ(fx.schema.size(), 4u);
  EXPECT_EQ(fx.schema.ForRelation("dine").size(), 2u);
  EXPECT_EQ(fx.schema.ForRelation("nothing").size(), 0u);
  EXPECT_EQ(fx.schema.TotalN(), 5000 + 31 + 1 + 1);
  EXPECT_GT(fx.schema.TotalLength(), 8u);
}

TEST(AccessSchemaTest, SubsetPreservesProvenance) {
  auto fx = MakeGraphSearch(false);
  AccessSchema sub = fx.schema.Subset({fx.psi2, fx.psi4});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.at(0).source_id, fx.psi2);
  EXPECT_EQ(sub.at(1).source_id, fx.psi4);
  EXPECT_EQ(sub.at(0).id, 0);
}

TEST(AccessSchemaTest, SetBound) {
  auto fx = MakeGraphSearch(false);
  ASSERT_TRUE(fx.schema.SetBound(fx.psi1, 6000).ok());
  EXPECT_EQ(fx.schema.at(fx.psi1).n, 6000);
  EXPECT_FALSE(fx.schema.SetBound(99, 5).ok());
  EXPECT_FALSE(fx.schema.SetBound(fx.psi1, 0).ok());
}

// -------------------------------------------------------------- Actualize ---

TEST(ActualizeTest, OneCopyPerOccurrence) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ0(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  AccessSchema actual = Actualize(fx.schema, *nq);
  // Q0 has occurrences friend, dine, cafe, dine2: dine constraints doubled.
  EXPECT_EQ(actual.size(), 1u + 2u + 1u + 2u);
  EXPECT_EQ(actual.ForRelation("dine2").size(), 2u);
  // Actualized constraints remember their source.
  for (const AccessConstraint& c : actual.constraints()) {
    EXPECT_GE(c.source_id, 0);
    EXPECT_LT(c.source_id, static_cast<int>(fx.schema.size()));
  }
}

// --------------------------------------------------------------- Validate ---

TEST(ValidateTest, FixtureSatisfiesA0) {
  auto fx = MakeGraphSearch();
  Result<ValidationReport> report = Validate(fx.db, fx.schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->ToString();
}

TEST(ValidateTest, DetectsViolation) {
  auto fx = MakeGraphSearch();
  // cafe(cid -> city, 1): a second city for c1 violates psi4.
  ASSERT_TRUE(
      fx.db.Insert("cafe", {Value::Str("c1"), Value::Str("boston")}).ok());
  Result<ValidationReport> report = Validate(fx.db, fx.schema);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
  bool found = false;
  for (const ConstraintCheck& c : report->checks) {
    if (!c.satisfied) {
      EXPECT_EQ(c.constraint_id, fx.psi4);
      EXPECT_EQ(c.max_group, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ValidateTest, DuplicateRowsDoNotViolate) {
  auto fx = MakeGraphSearch();
  ASSERT_TRUE(fx.db.Insert("cafe", {Value::Str("c1"), Value::Str("nyc")}).ok());
  Result<ValidationReport> report = Validate(fx.db, fx.schema);
  EXPECT_TRUE(report->satisfied);  // Distinct Y count unchanged.
}

// ------------------------------------------------------------ AccessIndex ---

TEST(AccessIndexTest, BuildAndFetch) {
  auto fx = MakeGraphSearch();
  Result<AccessIndex> idx =
      AccessIndex::Build(*fx.db.Get("friend"), fx.schema.at(fx.psi1));
  ASSERT_TRUE(idx.ok());
  uint64_t accessed = 0;
  std::vector<Tuple> rows = idx->Fetch({Value::Str("p0")}, &accessed);
  EXPECT_EQ(rows.size(), 2u);  // f1, f2.
  EXPECT_EQ(accessed, 2u);
  // Row layout is X columns then Y columns.
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("p0"));
}

TEST(AccessIndexTest, FetchMissingKeyReturnsEmpty) {
  auto fx = MakeGraphSearch();
  Result<AccessIndex> idx =
      AccessIndex::Build(*fx.db.Get("friend"), fx.schema.at(fx.psi1));
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(idx->Fetch({Value::Str("stranger")}).empty());
}

TEST(AccessIndexTest, EmptyXIndexesWholeProjection) {
  auto fx = MakeGraphSearch();
  AccessConstraint c = *AccessConstraint::Parse("cafe(() -> (city), 10)");
  Result<AccessIndex> idx = AccessIndex::Build(*fx.db.Get("cafe"), c);
  ASSERT_TRUE(idx.ok());
  std::vector<Tuple> rows = idx->Fetch({});
  EXPECT_EQ(rows.size(), 2u);  // nyc, sf (distinct).
}

TEST(AccessIndexTest, DistinctEntriesRefcounted) {
  auto fx = MakeGraphSearch();
  Result<AccessIndex> built =
      AccessIndex::Build(*fx.db.Get("cafe"), fx.schema.at(fx.psi4));
  ASSERT_TRUE(built.ok());
  AccessIndex idx = std::move(*built);
  size_t before = idx.NumEntries();
  // Insert a duplicate row: entry count unchanged, delete once keeps it.
  Tuple dup = {Value::Str("c1"), Value::Str("nyc")};
  ASSERT_TRUE(idx.ApplyInsert(dup).ok());
  EXPECT_EQ(idx.NumEntries(), before);
  ASSERT_TRUE(idx.ApplyDelete(dup).ok());
  EXPECT_EQ(idx.Fetch({Value::Str("c1")}).size(), 1u);
  // Second delete removes the entry for real.
  ASSERT_TRUE(idx.ApplyDelete(dup).ok());
  EXPECT_TRUE(idx.Fetch({Value::Str("c1")}).empty());
  // Deleting a non-existent row fails.
  EXPECT_EQ(idx.ApplyDelete(dup).code(), StatusCode::kNotFound);
}

TEST(AccessIndexTest, ViolationTracking) {
  auto fx = MakeGraphSearch();
  Result<AccessIndex> built =
      AccessIndex::Build(*fx.db.Get("cafe"), fx.schema.at(fx.psi4));
  ASSERT_TRUE(built.ok());
  AccessIndex idx = std::move(*built);
  EXPECT_FALSE(idx.HasViolation());
  ASSERT_TRUE(idx.ApplyInsert({Value::Str("c1"), Value::Str("boston")}).ok());
  EXPECT_TRUE(idx.HasViolation());
  EXPECT_EQ(idx.MaxGroupSize(), 2);
  idx.SetBound(2);
  EXPECT_FALSE(idx.HasViolation());
}

TEST(IndexSetTest, BuildAllAndFootprint) {
  auto fx = MakeGraphSearch();
  Result<IndexSet> set = IndexSet::Build(fx.db, fx.schema);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 4u);
  EXPECT_GT(set->TotalEntries(), 0u);
  EXPECT_NE(set->Get(fx.psi1), nullptr);
  EXPECT_EQ(set->Get(99), nullptr);
  EXPECT_FALSE(set->HasViolation());
}

// -------------------------------------------------------------- Maintain ---

class MaintainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = MakeGraphSearch();
    Result<IndexSet> set = IndexSet::Build(fx_.db, fx_.schema);
    ASSERT_TRUE(set.ok());
    indices_ = std::move(*set);
  }

  testutil::GraphSearchFixture fx_;
  IndexSet indices_;
};

TEST_F(MaintainTest, InsertUpdatesTableAndIndices) {
  std::vector<Delta> deltas = {
      Delta::Insert("friend", {Value::Str("p0"), Value::Str("f3")})};
  Result<MaintenanceStats> stats = ApplyDeltas(&fx_.db, &fx_.schema, &indices_,
                                               deltas, OverflowPolicy::kGrow);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->inserts, 1u);
  EXPECT_EQ(indices_.Get(fx_.psi1)->Fetch({Value::Str("p0")}).size(), 3u);
}

TEST_F(MaintainTest, DeleteUpdatesIndices) {
  std::vector<Delta> deltas = {
      Delta::Delete("friend", {Value::Str("p0"), Value::Str("f2")})};
  ASSERT_TRUE(ApplyDeltas(&fx_.db, &fx_.schema, &indices_, deltas,
                          OverflowPolicy::kGrow)
                  .ok());
  EXPECT_EQ(indices_.Get(fx_.psi1)->Fetch({Value::Str("p0")}).size(), 1u);
  EXPECT_EQ(fx_.db.Get("friend")->NumRows(), 2u);
}

TEST_F(MaintainTest, StrictPolicyRejectsOverflow) {
  // psi4: cafe(cid -> city, 1); a second city for c1 overflows.
  std::vector<Delta> deltas = {
      Delta::Insert("cafe", {Value::Str("c1"), Value::Str("boston")})};
  Result<MaintenanceStats> stats = ApplyDeltas(
      &fx_.db, &fx_.schema, &indices_, deltas, OverflowPolicy::kStrict);
  EXPECT_EQ(stats.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(MaintainTest, GrowPolicyRaisesBound) {
  std::vector<Delta> deltas = {
      Delta::Insert("cafe", {Value::Str("c1"), Value::Str("boston")})};
  Result<MaintenanceStats> stats = ApplyDeltas(
      &fx_.db, &fx_.schema, &indices_, deltas, OverflowPolicy::kGrow);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->constraints_grown, 1u);
  EXPECT_EQ(fx_.schema.at(fx_.psi4).n, 2);
  EXPECT_FALSE(indices_.Get(fx_.psi4)->HasViolation());
}

TEST_F(MaintainTest, UnknownTableFails) {
  std::vector<Delta> deltas = {Delta::Insert("zzz", {})};
  EXPECT_EQ(ApplyDeltas(&fx_.db, &fx_.schema, &indices_, deltas,
                        OverflowPolicy::kGrow)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(MaintainTest, CostBoundedPerDelta) {
  // index_updates per delta == number of constraints on that relation.
  std::vector<Delta> deltas = {
      Delta::Insert("dine",
                    {Value::Str("p9"), Value::Str("c9"), Value::Int(3),
                     Value::Int(2013)}),
      Delta::Insert("friend", {Value::Str("p9"), Value::Str("f9")})};
  Result<MaintenanceStats> stats = ApplyDeltas(&fx_.db, &fx_.schema, &indices_,
                                               deltas, OverflowPolicy::kGrow);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_updates, 2u + 1u);  // dine has 2 constraints.
}

// -------------------------------------------------------------- Discovery ---

TEST(DiscoveryTest, FindsFunctionalDependency) {
  auto fx = MakeGraphSearch();
  DiscoveryOptions opts;
  std::vector<AccessConstraint> found =
      DiscoverConstraints(*fx.db.Get("cafe"), opts);
  // cid -> city with N = 1 must be discovered.
  bool has_key = false;
  for (const AccessConstraint& c : found) {
    if (c.x == std::vector<std::string>{"cid"} && c.n == 1) has_key = true;
  }
  EXPECT_TRUE(has_key);
}

TEST(DiscoveryTest, FindsFiniteDomains) {
  auto fx = MakeGraphSearch();
  DiscoveryOptions opts;
  std::vector<AccessConstraint> found =
      DiscoverConstraints(*fx.db.Get("cafe"), opts);
  bool has_domain = false;
  for (const AccessConstraint& c : found) {
    if (c.x.empty()) has_domain = true;
  }
  EXPECT_TRUE(has_domain);
}

TEST(DiscoveryTest, RespectsNCap) {
  auto fx = MakeGraphSearch();
  DiscoveryOptions opts;
  opts.max_n_absolute = 1;
  opts.find_constant_domains = false;
  std::vector<AccessConstraint> found =
      DiscoverConstraints(*fx.db.Get("dine"), opts);
  for (const AccessConstraint& c : found) {
    EXPECT_EQ(c.n, 1) << c.ToString();
  }
}

TEST(DiscoveryTest, MinimalityPrunesSupersets) {
  auto fx = MakeGraphSearch();
  DiscoveryOptions opts;
  opts.minimal_only = true;
  opts.find_constant_domains = false;
  std::vector<AccessConstraint> found =
      DiscoverConstraints(*fx.db.Get("cafe"), opts);
  // cid -> city discovered with |X| = 1; no (cid, city) -> ... for city.
  for (const AccessConstraint& c : found) {
    EXPECT_LE(c.x.size(), 1u) << c.ToString();
  }
}

TEST(DiscoveryTest, DiscoveredConstraintsHoldOnData) {
  auto fx = MakeGraphSearch();
  DiscoveryOptions opts;
  AccessSchema schema;
  for (const std::string& rel : fx.db.catalog().RelationNames()) {
    for (AccessConstraint& c : DiscoverConstraints(*fx.db.Get(rel), opts)) {
      ASSERT_TRUE(schema.Add(std::move(c), fx.db.catalog()).ok());
    }
  }
  Result<ValidationReport> report = Validate(fx.db, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->ToString();
}

}  // namespace
}  // namespace bqe
