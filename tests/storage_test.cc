#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/tuple.h"

namespace bqe {
namespace {

// ----------------------------------------------------------------- Value ---

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-42);
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v = Value::Str("hello");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "'hello'");
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Double(1.0).Compare(Value::Double(1.5)), 0);
}

TEST(ValueTest, CompareAcrossTypesByTag) {
  // null < int < double < string (variant index order).
  EXPECT_LT(Value().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(99).Compare(Value::Double(0.0)), 0);
  EXPECT_LT(Value::Double(99.0).Compare(Value::Str("")), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value::Int(5) == Value::Int(5));
  EXPECT_TRUE(Value::Int(5) != Value::Int(6));
  EXPECT_TRUE(Value::Int(5) != Value::Str("5"));
  EXPECT_TRUE(Value::Int(4) < Value::Int(5));
  EXPECT_TRUE(Value::Int(5) >= Value::Int(5));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  // Different types with "same" payload should (overwhelmingly) differ.
  EXPECT_NE(Value::Int(0).Hash(), Value().Hash());
}

TEST(ValueTest, ParseLiterals) {
  EXPECT_EQ(*Value::Parse("42"), Value::Int(42));
  EXPECT_EQ(*Value::Parse("-17"), Value::Int(-17));
  EXPECT_EQ(*Value::Parse("2.5"), Value::Double(2.5));
  EXPECT_EQ(*Value::Parse("'txt'"), Value::Str("txt"));
  EXPECT_EQ(*Value::Parse("NULL"), Value());
  EXPECT_EQ(*Value::Parse("  7 "), Value::Int(7));
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("abc").ok());
  EXPECT_FALSE(Value::Parse("12x").ok());
}

// ----------------------------------------------------------------- Tuple ---

TEST(TupleTest, CompareLexicographic) {
  Tuple a = {Value::Int(1), Value::Int(2)};
  Tuple b = {Value::Int(1), Value::Int(3)};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_EQ(CompareTuples(a, a), 0);
  EXPECT_GT(CompareTuples(b, a), 0);
}

TEST(TupleTest, ShorterTupleSortsFirstOnPrefix) {
  Tuple a = {Value::Int(1)};
  Tuple b = {Value::Int(1), Value::Int(0)};
  EXPECT_LT(CompareTuples(a, b), 0);
}

TEST(TupleTest, HashEqualForEqualTuples) {
  Tuple a = {Value::Int(1), Value::Str("x")};
  Tuple b = {Value::Int(1), Value::Str("x")};
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(b));
}

TEST(TupleTest, ProjectTupleDuplicatesAllowed) {
  Tuple t = {Value::Int(10), Value::Int(20), Value::Int(30)};
  Tuple p = ProjectTuple(t, {2, 0, 2});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], Value::Int(30));
  EXPECT_EQ(p[1], Value::Int(10));
  EXPECT_EQ(p[2], Value::Int(30));
}

TEST(TupleTest, ToStringFormat) {
  Tuple t = {Value::Int(1), Value::Str("a")};
  EXPECT_EQ(TupleToString(t), "(1, 'a')");
}

// ---------------------------------------------------------------- Schema ---

TEST(SchemaTest, AttrIndexLookup) {
  RelationSchema s("r", {{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.AttrIndex("a"), 0);
  EXPECT_EQ(s.AttrIndex("b"), 1);
  EXPECT_EQ(s.AttrIndex("c"), -1);
  EXPECT_TRUE(s.HasAttr("a"));
  EXPECT_FALSE(s.HasAttr("z"));
}

TEST(SchemaTest, RequireAttrError) {
  RelationSchema s("r", {{"a", ValueType::kInt}});
  EXPECT_TRUE(s.RequireAttr("a").ok());
  Result<int> r = s.RequireAttr("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ToStringListsTypes) {
  RelationSchema s("r", {{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  EXPECT_EQ(s.ToString(), "r(a:int, b:double)");
}

// --------------------------------------------------------------- Catalog ---

TEST(CatalogTest, AddAndGet) {
  Catalog c;
  ASSERT_TRUE(c.AddRelation(RelationSchema("r", {{"a", ValueType::kInt}})).ok());
  ASSERT_NE(c.Get("r"), nullptr);
  EXPECT_EQ(c.Get("missing"), nullptr);
  EXPECT_TRUE(c.Has("r"));
  EXPECT_EQ(c.size(), 1u);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog c;
  ASSERT_TRUE(c.AddRelation(RelationSchema("r", {})).ok());
  EXPECT_EQ(c.AddRelation(RelationSchema("r", {})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, EmptyNameRejected) {
  Catalog c;
  EXPECT_EQ(c.AddRelation(RelationSchema("", {})).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RelationNamesSorted) {
  Catalog c;
  ASSERT_TRUE(c.AddRelation(RelationSchema("zeta", {})).ok());
  ASSERT_TRUE(c.AddRelation(RelationSchema("alpha", {})).ok());
  std::vector<std::string> names = c.RelationNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// ----------------------------------------------------------------- Table ---

Table MakeTable() {
  return Table(RelationSchema(
      "t", {{"a", ValueType::kInt}, {"b", ValueType::kString}}));
}

TEST(TableTest, InsertValidRow) {
  Table t = MakeTable();
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, InsertArityMismatch) {
  Table t = MakeTable();
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertTypeMismatch) {
  Table t = MakeTable();
  EXPECT_EQ(t.Insert({Value::Str("no"), Value::Str("x")}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, NullAllowedForAnyType) {
  Table t = MakeTable();
  EXPECT_TRUE(t.Insert({Value(), Value::Str("x")}).ok());
}

TEST(TableTest, EraseRemovesOneOccurrence) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(t.Erase({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(t.NumRows(), 1u);
  ASSERT_TRUE(t.Erase({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(t.Erase({Value::Int(1), Value::Str("x")}).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, CanonicalizeSortsAndDedupes) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Str("b")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Str("b")}).ok());
  t.Canonicalize();
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0], Value::Int(1));
}

TEST(TableTest, SameSetIgnoresOrderAndDuplicates) {
  Table a = MakeTable(), b = MakeTable();
  ASSERT_TRUE(a.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(a.Insert({Value::Int(2), Value::Str("y")}).ok());
  ASSERT_TRUE(b.Insert({Value::Int(2), Value::Str("y")}).ok());
  ASSERT_TRUE(b.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(b.Insert({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_TRUE(Table::SameSet(a, b));
  ASSERT_TRUE(b.Insert({Value::Int(3), Value::Str("z")}).ok());
  EXPECT_FALSE(Table::SameSet(a, b));
}

TEST(TableTest, DistinctProject) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("y")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Str("x")}).ok());
  Table p = t.DistinctProject({0});
  EXPECT_EQ(p.NumRows(), 2u);
  EXPECT_EQ(p.schema().arity(), 1u);
}

// -------------------------------------------------------------- Database ---

TEST(DatabaseTest, CreateInsertLookup) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(RelationSchema("r", {{"a", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.Insert("r", {Value::Int(1)}).ok());
  ASSERT_NE(db.Get("r"), nullptr);
  EXPECT_EQ(db.Get("r")->NumRows(), 1u);
  EXPECT_EQ(db.Get("missing"), nullptr);
  EXPECT_EQ(db.Insert("missing", {}).code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TotalTuples) {
  Database db;
  ASSERT_TRUE(db.CreateTable(RelationSchema("r", {{"a", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.CreateTable(RelationSchema("s", {{"b", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.Insert("r", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("s", {Value::Int(2)}).ok());
  ASSERT_TRUE(db.Insert("s", {Value::Int(3)}).ok());
  EXPECT_EQ(db.TotalTuples(), 3u);
  EXPECT_EQ(db.TableSizes()["s"], 2u);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable(RelationSchema("r", {})).ok());
  EXPECT_EQ(db.CreateTable(RelationSchema("r", {})).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace bqe
