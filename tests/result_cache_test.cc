#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/table.h"

namespace bqe {
namespace {

using serve::ResultCache;
using serve::ResultCacheStats;

/// A result-shaped table: `rows` single-string tuples with `payload`-sized
/// values, so tests can dial entry byte weights via ApproxBytes.
std::shared_ptr<const Table> MakeResult(size_t rows, size_t payload = 8) {
  Table t(RelationSchema("r", {Attribute{"cid", ValueType::kString}}));
  for (size_t i = 0; i < rows; ++i) {
    t.InsertUnchecked({Value::Str(std::string(payload, 'a' + i % 26))});
  }
  return std::make_shared<const Table>(std::move(t));
}

ResultCache::CachedResult Cached(std::shared_ptr<const Table> t) {
  return ResultCache::CachedResult{std::move(t), /*used_bounded_plan=*/true};
}

TEST(ResultCacheTest, MissInsertHitSharesOneTable) {
  ResultCache cache(1 << 20);
  CoherenceSnapshot now{1, 0};
  ResultCache::CachedResult out;
  EXPECT_FALSE(cache.Lookup("q1", now, &out));

  std::shared_ptr<const Table> table = MakeResult(4);
  cache.Insert("q1", now, Cached(table));
  ASSERT_TRUE(cache.Lookup("q1", now, &out));
  EXPECT_EQ(out.table, table);  // The shared pinned table, not a copy.
  EXPECT_TRUE(out.used_bounded_plan);

  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(ResultCacheTest, EpochMoveInvalidatesOnLookup) {
  ResultCache cache(1 << 20);
  cache.Insert("q1", CoherenceSnapshot{1, 7}, Cached(MakeResult(4)));

  // A delta batch bumped the data epoch: the entry must be dropped, not
  // served.
  ResultCache::CachedResult out;
  EXPECT_FALSE(cache.Lookup("q1", CoherenceSnapshot{1, 8}, &out));
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);

  // Same story for a schema-epoch move at equal data epoch.
  cache.Insert("q1", CoherenceSnapshot{1, 8}, Cached(MakeResult(4)));
  EXPECT_FALSE(cache.Lookup("q1", CoherenceSnapshot{2, 8}, &out));
  EXPECT_EQ(cache.stats().invalidations, 2u);

  // Fresh insert under the current snapshot serves again.
  cache.Insert("q1", CoherenceSnapshot{2, 8}, Cached(MakeResult(4)));
  EXPECT_TRUE(cache.Lookup("q1", CoherenceSnapshot{2, 8}, &out));
}

TEST(ResultCacheTest, StaleOverwriteCountsInvalidationKeepsOneEntry) {
  ResultCache cache(1 << 20);
  CoherenceSnapshot a{1, 1}, b{1, 2};
  cache.Insert("q1", a, Cached(MakeResult(2)));
  cache.Insert("q1", b, Cached(MakeResult(3)));  // Stale predecessor.
  cache.Insert("q1", b, Cached(MakeResult(3)));  // Same-snapshot race.
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.invalidations, 1u);  // Only the cross-epoch overwrite.
}

TEST(ResultCacheTest, LruEvictionPrefersColdEntries) {
  // Calibrate the per-entry byte weight with a probe cache so the real
  // capacity holds exactly three of these entries.
  CoherenceSnapshot now{1, 0};
  size_t unit = 0;
  {
    ResultCache probe(1 << 20);
    probe.Insert("qA", now, Cached(MakeResult(8, 64)));
    unit = probe.stats().bytes;
  }
  ASSERT_GT(unit, 0u);
  ResultCache cache(3 * unit + unit / 2);

  cache.Insert("qA", now, Cached(MakeResult(8, 64)));
  cache.Insert("qB", now, Cached(MakeResult(8, 64)));
  cache.Insert("qC", now, Cached(MakeResult(8, 64)));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch qA so qB is the LRU victim when qD overflows the capacity.
  ResultCache::CachedResult out;
  ASSERT_TRUE(cache.Lookup("qA", now, &out));
  cache.Insert("qD", now, Cached(MakeResult(8, 64)));

  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_TRUE(cache.Lookup("qA", now, &out));   // Kept: recently used.
  EXPECT_FALSE(cache.Lookup("qB", now, &out));  // The LRU victim.
  EXPECT_TRUE(cache.Lookup("qC", now, &out));
  EXPECT_TRUE(cache.Lookup("qD", now, &out));
  EXPECT_LE(cache.stats().bytes, 3 * unit + unit / 2);
}

TEST(ResultCacheTest, OversizedResultIsNeverInserted) {
  ResultCache cache(256);  // Smaller than any real result entry below.
  CoherenceSnapshot now{1, 0};
  cache.Insert("q1", now, Cached(MakeResult(64, 64)));
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.oversized, 1u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.entries, 0u);
  ResultCache::CachedResult out;
  EXPECT_FALSE(cache.Lookup("q1", now, &out));
}

TEST(ResultCacheTest, SweepStaleEagerlyDropsOldEpochEntries) {
  ResultCache cache(1 << 20);
  cache.Insert("q1", CoherenceSnapshot{1, 1}, Cached(MakeResult(2)));
  cache.Insert("q2", CoherenceSnapshot{1, 2}, Cached(MakeResult(2)));
  cache.Insert("q3", CoherenceSnapshot{1, 2}, Cached(MakeResult(2)));

  // The epoch-bump sweep drops q1 immediately — before IVM the stale table
  // would have pinned the byte budget until its next lookup — and counts
  // it in evicted_stale, NOT invalidations (those stay lazy-lookup-only).
  cache.SweepStale(CoherenceSnapshot{1, 2});
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evicted_stale, 1u);
  EXPECT_EQ(s.invalidations, 0u);
  ResultCache::CachedResult out;
  EXPECT_FALSE(cache.Lookup("q1", CoherenceSnapshot{1, 2}, &out));
  EXPECT_TRUE(cache.Lookup("q2", CoherenceSnapshot{1, 2}, &out));

  // A schema-epoch move sweeps everything that remains.
  cache.SweepStale(CoherenceSnapshot{2, 2});
  s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.evicted_stale, 3u);
}

TEST(ResultCacheTest, RefreshWithoutHandlesSweepsStaleKeepsFresh) {
  ResultCache cache(1 << 20);
  CoherenceSnapshot pre{1, 4}, post{1, 5};
  cache.Insert("stale", pre, Cached(MakeResult(2)));    // No handle.
  cache.Insert("fresh", post, Cached(MakeResult(2)));   // Already at post.
  cache.Insert("older", CoherenceSnapshot{1, 2}, Cached(MakeResult(2)));

  // With no maintenance handles nothing can be patched: entries keyed at
  // `pre` or older are swept, entries already at `post` survive untouched.
  // Refresh() requires the caller's writer gate held exclusively.
  WriterPriorityGate gate;
  serve::RefreshSummary sum;
  {
    WriterGateLock wl(&gate);
    sum = cache.Refresh(gate, {}, pre, post);
  }
  EXPECT_EQ(sum.refreshed, 0u);
  EXPECT_EQ(sum.fallbacks, 0u);
  EXPECT_EQ(sum.swept, 2u);
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evicted_stale, 2u);
  EXPECT_EQ(s.refreshes, 0u);
  ResultCache::CachedResult out;
  EXPECT_TRUE(cache.Lookup("fresh", post, &out));
  EXPECT_FALSE(cache.Lookup("stale", post, &out));
}

TEST(ResultCacheTest, ClearDropsEverythingButKeepsCounters) {
  ResultCache cache(1 << 20);
  CoherenceSnapshot now{1, 0};
  cache.Insert("q1", now, Cached(MakeResult(2)));
  cache.Insert("q2", now, Cached(MakeResult(2)));
  cache.Clear();
  ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.insertions, 2u);
  ResultCache::CachedResult out;
  EXPECT_FALSE(cache.Lookup("q1", now, &out));
}

}  // namespace
}  // namespace bqe
