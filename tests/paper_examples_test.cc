#include <gtest/gtest.h>

#include "baseline/eval.h"
#include "constraints/actualize.h"
#include "constraints/index.h"
#include "constraints/maintain.h"
#include "core/cov.h"
#include "core/plan_exec.h"
#include "core/qplan.h"
#include "ra/builder.h"
#include "ra/normalize.h"
#include "testutil.h"

namespace bqe {
namespace {

// ------------------------------------------------------ Example 3 schema ---
//
// A1 = { R(AB -> E, N), S(F -> GH, 2), S(GH -> GH, 1) } over R(A,B,E) and
// S(F,G,H). The paper shows Q4 = Q4^1 - Q4^2 is boundedly evaluable but the
// argument needs *instance-level* reasoning (S(F -> GH, 2) forces (x,y) to
// coincide with one of two tuples), which the effective syntax deliberately
// does not capture. We verify our machinery draws exactly the expected
// line: Q4's sub-queries are not covered (x, y, w, u are not derivable from
// constants), and the covered fragment behaves as stated.

class ExampleThreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(RelationSchema("R",
                                               {{"A", ValueType::kInt},
                                                {"B", ValueType::kInt},
                                                {"E", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(RelationSchema("S",
                                               {{"F", ValueType::kInt},
                                                {"G", ValueType::kInt},
                                                {"H", ValueType::kInt}}))
                    .ok());
    for (const char* text :
         {"R((A, B) -> (E), 10)", "S((F) -> (G, H), 2)",
          "S((G, H) -> (G, H), 1)"}) {
      ASSERT_TRUE(
          schema_.Add(*AccessConstraint::Parse(text), db_.catalog()).ok());
    }
  }

  Database db_;
  AccessSchema schema_;
};

TEST_F(ExampleThreeTest, Q4SubqueriesNotCovered) {
  // Q4^1 = pi_x(R(1, x, y) |x| S(w, x, y) |x| S(w, 1, x) |x| S(w, x, x)).
  RaExprPtr q41 = Project(
      Select(
          Product(Product(Product(Rel("R"), RelAs("S", "S1")),
                          RelAs("S", "S2")),
                  RelAs("S", "S3")),
          {EqC(A("R", "A"), Value::Int(1)),
           // x: R.B = S1.G = S2.H = S3.G; y: R.E = S1.H.
           EqA(A("R", "B"), A("S1", "G")), EqA(A("R", "E"), A("S1", "H")),
           // w: S1.F = S2.F = S3.F.
           EqA(A("S1", "F"), A("S2", "F")), EqA(A("S1", "F"), A("S3", "F")),
           EqC(A("S2", "G"), Value::Int(1)), EqA(A("S2", "H"), A("R", "B")),
           EqA(A("S3", "G"), A("R", "B")), EqA(A("S3", "H"), A("R", "B"))}),
      {A("R", "B")});
  Result<NormalizedQuery> nq = Normalize(q41, db_.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  Result<CoverageReport> r = CheckCoverage(*nq, schema_);
  ASSERT_TRUE(r.ok());
  // x and w are not derivable from the constant 1 under A1's syntax-level
  // analysis — exactly the paper's "at a first glance" situation.
  EXPECT_FALSE(r->covered);
  EXPECT_FALSE(r->fetchable);
}

TEST_F(ExampleThreeTest, SpecializedVariantStillNotCovered) {
  // Q4^1' = pi_x(R(1, 1, x) |x| S(w, 1, x) |x| S(w, x, x)): even after the
  // paper's instance-level specialization, the shared join variable w keeps
  // the query outside the *covered* class (w occurs in the selection
  // condition but is not derivable from constants under A1). The paper
  // only claims Q4^1' is boundedly evaluable — Example 3 is exactly the
  // bounded-but-not-covered frontier that motivates Theorem 2(1)'s
  // "A-equivalent to a covered query" phrasing.
  RaExprPtr q = Project(
      Select(Product(Product(Rel("R"), RelAs("S", "S1")), RelAs("S", "S2")),
             {EqC(A("R", "A"), Value::Int(1)), EqC(A("R", "B"), Value::Int(1)),
              EqA(A("S1", "F"), A("S2", "F")),
              EqC(A("S1", "G"), Value::Int(1)), EqA(A("S1", "H"), A("R", "E")),
              EqA(A("S2", "G"), A("R", "E")), EqA(A("S2", "H"), A("R", "E"))}),
      {A("R", "E")});
  Result<NormalizedQuery> nq = Normalize(q, db_.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  Result<CoverageReport> r = CheckCoverage(*nq, schema_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->fetchable);
  EXPECT_FALSE(r->covered);
}

TEST_F(ExampleThreeTest, DroppingTheJoinVariableMakesItCovered) {
  // Without the w-join (S1.F = S2.F), every attribute in X_Q is derivable:
  // x via R(AB -> E) from the constants, and both S occurrences are
  // indexed by S(GH -> GH, 1), whose X = {G, H} classes are covered. This
  // pins down exactly which atom kept the previous query uncovered.
  RaExprPtr q = Project(
      Select(Product(Product(Rel("R"), RelAs("S", "S1")), RelAs("S", "S2")),
             {EqC(A("R", "A"), Value::Int(1)), EqC(A("R", "B"), Value::Int(1)),
              EqC(A("S1", "G"), Value::Int(1)), EqA(A("S1", "H"), A("R", "E")),
              EqA(A("S2", "G"), A("R", "E")), EqA(A("S2", "H"), A("R", "E"))}),
      {A("R", "E")});
  Result<NormalizedQuery> nq = Normalize(q, db_.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  Result<CoverageReport> r = CheckCoverage(*nq, schema_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->fetchable) << r->Explain();
  EXPECT_TRUE(r->covered) << r->Explain();
}

// --------------------------------------------------------------- Lemma 1 ---

class Lemma1Test : public ::testing::Test {
 protected:
  Lemma1Test() : fx_(testutil::MakeGraphSearch()) {}
  testutil::GraphSearchFixture fx_;
};

TEST_F(Lemma1Test, ActualizedSchemaPreservesSatisfaction) {
  // D |= A iff D |= A' where A' renames constraints to occurrences that
  // exist in D under the same base tables. Validate via a query whose
  // occurrences keep base names.
  Result<NormalizedQuery> nq =
      Normalize(testutil::MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  AccessSchema actual = Actualize(fx_.schema, *nq);
  // Each actualized constraint is satisfied by the base table of its
  // occurrence (validated through source mapping).
  for (const AccessConstraint& c : actual.constraints()) {
    ASSERT_GE(c.source_id, 0);
    const AccessConstraint& src = fx_.schema.at(c.source_id);
    EXPECT_EQ(c.x, src.x);
    EXPECT_EQ(c.y, src.y);
    EXPECT_EQ(c.n, src.n);
  }
}

TEST_F(Lemma1Test, ActualizationSizeIsProductBound) {
  // |A'| <= occurrences * |A| (Lemma 1's O(|Q||A|) construction).
  Result<NormalizedQuery> nq =
      Normalize(testutil::MakeQ0Prime(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  AccessSchema actual = Actualize(fx_.schema, *nq);
  EXPECT_LE(actual.size(), nq->occurrences().size() * fx_.schema.size());
}

// ------------------------------------------------- Plan length sweeps -----

class PlanLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanLengthTest, LengthLinearInQueryTimesSchema) {
  // Lemma 8: |plan| = O(|Q||A|). Chain k unions of the Example-1 Q1 block;
  // plan length must grow linearly in k, not quadratically.
  auto fx = testutil::MakeGraphSearch(false);
  int k = GetParam();
  RaExprPtr q = testutil::MakeQ1();
  for (int i = 1; i <= k; ++i) {
    q = Union(q, CloneWithSuffix(testutil::MakeQ1(), "#u" + std::to_string(i)));
  }
  Result<NormalizedQuery> nq = Normalize(q, fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx.schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());
  // One block's plan is ~26 steps; k + 1 blocks plus k union steps.
  size_t one_block = 26;
  EXPECT_LE(plan->Length(),
            (static_cast<size_t>(k) + 1) * (one_block + 6) + 4);
}

INSTANTIATE_TEST_SUITE_P(UnionChains, PlanLengthTest,
                         ::testing::Values(0, 1, 2, 4, 8));

// -------------------------------------------------- Failure injection -----

TEST(FailureInjectionTest, ExecutorRejectsMissingIndex) {
  auto fx = testutil::MakeGraphSearch();
  Result<NormalizedQuery> nq = Normalize(testutil::MakeQ1(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx.schema);
  ASSERT_TRUE(report.ok());
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());
  // Indices built for a single unrelated constraint: fetches must fail
  // loudly, not silently return empty.
  AccessSchema tiny = fx.schema.Subset({fx.psi4});
  // Clear provenance so the executor cannot resolve the original ids.
  Result<IndexSet> indices = IndexSet::Build(fx.db, tiny);
  ASSERT_TRUE(indices.ok());
  Result<Table> got = ExecutePlan(*plan, *indices, nullptr);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, PlanWithoutOutputRejected) {
  auto fx = testutil::MakeGraphSearch();
  Result<IndexSet> indices = IndexSet::Build(fx.db, fx.schema);
  ASSERT_TRUE(indices.ok());
  BoundedPlan empty;
  Result<Table> got = ExecutePlan(empty, *indices, nullptr);
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, CoverageOnEmptyDatabaseStillWorks) {
  // Coverage and planning are meta-level: they must work with zero tuples.
  auto fx = testutil::MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(testutil::MakeQ1(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx.schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());
  Result<IndexSet> indices = IndexSet::Build(fx.db, fx.schema);
  ASSERT_TRUE(indices.ok());
  Result<Table> got = ExecutePlan(*plan, *indices, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumRows(), 0u);
}

TEST(FailureInjectionTest, MaintenanceDeleteOfAbsentRowFails) {
  auto fx = testutil::MakeGraphSearch();
  Result<IndexSet> built = IndexSet::Build(fx.db, fx.schema);
  ASSERT_TRUE(built.ok());
  IndexSet indices = std::move(*built);
  std::vector<Delta> deltas = {
      Delta::Delete("friend", {Value::Str("nobody"), Value::Str("nothing")})};
  Result<MaintenanceStats> stats = ApplyDeltas(
      &fx.db, &fx.schema, &indices, deltas, OverflowPolicy::kGrow);
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

// ------------------------------------- A-equivalence vs plain equivalence --

TEST(AEquivalenceTest, RewriteOnlyEquivalentWhenDSatisfiesA) {
  // Q0' == Q0 holds on D |= A0 (it is an A-equivalence, not a plain one).
  // On a database *violating* psi4 (a cafe with two cities), both queries
  // still agree here because the rewrite's correctness argument
  // (L - R == L - (L n R)) is instance-independent — verify exactly that.
  auto fx = testutil::MakeGraphSearch();
  ASSERT_TRUE(
      fx.db.Insert("cafe", {Value::Str("c1"), Value::Str("boston")}).ok());
  Result<NormalizedQuery> q0 = Normalize(testutil::MakeQ0(), fx.db.catalog());
  Result<NormalizedQuery> q0p =
      Normalize(testutil::MakeQ0Prime(), fx.db.catalog());
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q0p.ok());
  Result<Table> a = EvaluateBaseline(*q0, fx.db, nullptr);
  Result<Table> b = EvaluateBaseline(*q0p, fx.db, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(Table::SameSet(*a, *b));
}

}  // namespace
}  // namespace bqe
