#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baseline/eval.h"
#include "constraints/index.h"
#include "core/cov.h"
#include "core/qplan.h"
#include "exec/key_codec.h"
#include "exec/operators.h"
#include "exec/parallel.h"
#include "exec/physical_plan.h"
#include "workload/datasets.h"
#include "workload/graph_churn.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

/// Differential testing of the two-phase partitioned breaker build against
/// the serial breaker: the same 48 dataset/seed cases as
/// parallel_exec_test.cc, executed with the partitioned path forced on
/// (partitioned_build_min_rows = 0) and forced off (SIZE_MAX), must emit
/// byte-identical row streams; plus operator-level skew stress driving the
/// concurrent scatter/build kernels directly through the WorkerPool (the
/// ThreadSanitizer job runs this file).

Tuple Row(std::initializer_list<Value> vs) { return Tuple(vs); }

// ----------------------------------------------------- facade semantics ---

TEST(PartitionedKeyTableTest, FacadeMatchesKeyTableMembership) {
  KeyTable plain;
  PartitionedKeyTable one(1);
  PartitionedKeyTable sharded(8);
  EXPECT_EQ(one.num_partitions(), 1u);
  EXPECT_EQ(sharded.num_partitions(), 8u);

  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("key-" + std::to_string(i % 137));
  }
  for (const std::string& k : keys) {
    bool ip = false, i1 = false, i8 = false;
    plain.InsertOrFind(k, &ip);
    one.InsertOrFind(k, &i1);
    sharded.InsertOrFind(k, &i8);
    EXPECT_EQ(ip, i1) << k;
    EXPECT_EQ(ip, i8) << k;
  }
  EXPECT_EQ(plain.NumGroups(), 137u);
  EXPECT_EQ(one.NumGroups(), 137u);
  EXPECT_EQ(sharded.NumGroups(), 137u);
  for (const std::string& k : keys) {
    EXPECT_NE(sharded.Find(k), PartitionedKeyTable::kNoGroup);
    // Repeated lookups return the same packed id.
    EXPECT_EQ(sharded.Find(k), sharded.Find(k));
  }
  EXPECT_EQ(sharded.Find("absent"), PartitionedKeyTable::kNoGroup);
  EXPECT_EQ(one.Find("absent"), PartitionedKeyTable::kNoGroup);
}

TEST(PartitionedKeyTableTest, RoutingUsesHighBitsConsistently) {
  PartitionedKeyTable t(16);
  EXPECT_EQ(t.num_partitions(), 16u);
  // Every key routes to one stable partition below the count, and the
  // same hash routes identically on every call.
  for (int i = 0; i < 1000; ++i) {
    std::string k = "route-" + std::to_string(i);
    uint64_t h = HashBytes(k);
    size_t p = t.PartitionOf(h);
    EXPECT_LT(p, 16u);
    EXPECT_EQ(p, t.PartitionOf(h));
  }
  // Partition counts round up to a power of two and clamp to the max.
  EXPECT_EQ(PartitionedKeyTable(3).num_partitions(), 4u);
  EXPECT_EQ(PartitionedKeyTable(1000).num_partitions(),
            PartitionedKeyTable::kMaxPartitions);
}

TEST(PartitionedKeyTableTest, PickBuildPartitionsScalesWithBuildSize) {
  EXPECT_EQ(PickBuildPartitions(0), 0);     // Empty: serial.
  EXPECT_EQ(PickBuildPartitions(255), 0);   // Below the floor: serial.
  EXPECT_EQ(PickBuildPartitions(256), 8);   // Floor: minimum fan-out.
  EXPECT_EQ(PickBuildPartitions(60000), 8);
  EXPECT_EQ(PickBuildPartitions(100000), 16);
  EXPECT_EQ(PickBuildPartitions(1u << 20), 64);  // Clamped at the max.
  EXPECT_EQ(PickBuildPartitions(~uint64_t{0}),
            static_cast<int>(PartitionedKeyTable::kMaxPartitions));
}

TEST(KeyTableTest, ResetKeepsSlotCapacityAndClearsGroups) {
  KeyTable t(4);
  for (int i = 0; i < 300; ++i) {
    t.InsertOrFind("k" + std::to_string(i), nullptr);
  }
  EXPECT_EQ(t.NumGroups(), 300u);
  t.Reset(8);
  EXPECT_EQ(t.NumGroups(), 0u);
  EXPECT_EQ(t.Find("k5"), KeyTable::kNoGroup);
  // Reusable: fresh inserts get dense ids again.
  bool inserted = false;
  EXPECT_EQ(t.InsertOrFind("again", &inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.InsertOrFind("again", &inserted), 0u);
  EXPECT_FALSE(inserted);
}

// ------------------------------------------- operator-level skew stress ---

/// Builds the same join table serially and via the two-phase partitioned
/// kernels (scatter + per-partition build fanned out over the WorkerPool),
/// probes both, and compares the emitted row streams. Keys are heavily
/// skewed: 90% of the build rows share one key, so one partition carries
/// nearly the whole build — the worst case for partition balance and the
/// interesting case for TSan (hot chains, shared `next`, disjoint writes).
TEST(PartitionedBuildSkewTest, SkewedJoinBuildMatchesSerial) {
  std::vector<ValueType> types = {ValueType::kInt, ValueType::kInt};
  std::vector<Tuple> rrows;
  for (int i = 0; i < 20000; ++i) {
    int64_t key = (i % 10 != 0) ? 7 : (i % 97) + 100;
    rrows.push_back(Row({Value::Int(key), Value::Int(i)}));
  }
  BatchVec right = TuplesToBatches(rrows, types, 1024);
  std::vector<Tuple> lrows;
  for (int i = 0; i < 97; ++i) {
    lrows.push_back(Row({Value::Int(i + 95), Value::Int(-i)}));
  }
  lrows.push_back(Row({Value::Int(7), Value::Int(-1000)}));  // The hot key.
  BatchVec left = TuplesToBatches(lrows, types, 64);
  std::vector<ValueType> out_types = {ValueType::kInt, ValueType::kInt,
                                      ValueType::kInt, ValueType::kInt};
  std::vector<int> rk = {0}, lk = {0};

  ColumnBatch scratch;
  const ColumnBatch* r = MergedChunk(right, types, &scratch);
  KeyEncoder enc;
  JoinBuildTable serial_bt = BuildJoinTable(*r, rk, &enc);
  BatchVec serial_out;
  PairWriter spw(out_types, 1024, &serial_out);
  for (const ColumnBatch& lb : left) {
    ProbeJoinBatch(serial_bt, *r, lb, lk, &enc, &spw);
  }

  // Partitioned: one scatter task per build batch, partitions built
  // concurrently (4 workers), chains through the shared `next`.
  JoinBuildTable bt;
  bt.groups = PartitionedKeyTable(16, r->num_rows());
  bt.heads.resize(bt.groups.num_partitions());
  bt.next.assign(r->num_rows(), JoinBuildTable::kNone);
  std::vector<uint32_t> bases;
  uint32_t base = 0;
  for (const ColumnBatch& b : right) {
    bases.push_back(base);
    base += static_cast<uint32_t>(b.num_rows());
  }
  std::vector<KeyScatter> scattered(right.size());
  WorkerPool& pool = WorkerPool::Shared();
  pool.ParallelFor(right.size(), 4, [&](size_t, size_t t) {
    KeyEncoder e;
    ScatterKeys(right[t], rk, bases[t], bt.groups, &e, &scattered[t]);
  });
  pool.ParallelFor(bt.groups.num_partitions(), 4, [&](size_t, size_t p) {
    BuildJoinTablePartition(scattered, p, &bt);
  });

  BatchVec par_out;
  PairWriter ppw(out_types, 1024, &par_out);
  for (const ColumnBatch& lb : left) {
    ProbeJoinBatch(bt, *r, lb, lk, &enc, &ppw);
  }

  std::vector<Tuple> want = BatchesToTuples(serial_out);
  std::vector<Tuple> got = BatchesToTuples(par_out);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_GT(want.size(), 18000u);  // The hot key alone fans out 18000 rows.
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "row " << i;
  }
}

TEST(PartitionedBuildSkewTest, SkewedSetBuildMarksSerialFirstOccurrences) {
  std::vector<ValueType> types = {ValueType::kInt, ValueType::kString};
  std::vector<Tuple> rows;
  for (int i = 0; i < 30000; ++i) {
    // 47 distinct rows total, one of them covering ~half the input.
    int64_t key = (i % 2 == 0) ? 42 : i % 47;
    rows.push_back(Row({Value::Int(key), Value::Str(key % 2 ? "a" : "b")}));
  }
  BatchVec input = TuplesToBatches(rows, types, 512);

  // Serial oracle: global first-occurrence dedupe in input order.
  BatchVec serial_out;
  BatchWriter sw(types, 512, &serial_out);
  KeyTable seen(rows.size());
  KeyEncoder enc;
  for (const ColumnBatch& b : input) {
    AppendDistinctRows(b, {}, nullptr, &seen, &enc, &sw);
  }
  sw.Finish();

  // Partitioned: concurrent scatter, concurrent per-partition dedupe
  // marking winner flags, ordered flag-gather.
  PartitionedKeyTable table(8, rows.size());
  std::vector<uint32_t> bases;
  uint32_t base = 0;
  for (const ColumnBatch& b : input) {
    bases.push_back(base);
    base += static_cast<uint32_t>(b.num_rows());
  }
  std::vector<KeyScatter> scattered(input.size());
  WorkerPool& pool = WorkerPool::Shared();
  pool.ParallelFor(input.size(), 4, [&](size_t, size_t t) {
    KeyEncoder e;
    ScatterKeys(input[t], {}, bases[t], table, &e, &scattered[t]);
  });
  std::vector<uint8_t> first(rows.size(), 0);
  pool.ParallelFor(table.num_partitions(), 4, [&](size_t, size_t p) {
    BuildKeySetPartition(scattered, p, &table, first.data());
  });
  BatchVec par_out;
  BatchWriter pw(types, 512, &par_out);
  std::vector<uint32_t> sel;
  for (size_t b = 0; b < input.size(); ++b) {
    sel.clear();
    for (size_t i = 0; i < input[b].num_rows(); ++i) {
      if (first[bases[b] + i] != 0) sel.push_back(static_cast<uint32_t>(i));
    }
    pw.WriteGather(input[b], sel.data(), sel.size(), {});
  }
  pw.Finish();

  std::vector<Tuple> want = BatchesToTuples(serial_out);
  std::vector<Tuple> got = BatchesToTuples(par_out);
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(want.size(), 47u);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "row " << i;
  }
  EXPECT_EQ(table.NumGroups(), 47u);
}

// --------------------------------------------- end-to-end differential ---

struct DiffCase {
  const char* dataset;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  return std::string(info.param.dataset) + "_s" +
         std::to_string(info.param.seed);
}

class PartitionedBuildDiffTest : public ::testing::TestWithParam<DiffCase> {
 protected:
  static const GeneratedDataset& Dataset(const std::string& name) {
    static std::map<std::string, GeneratedDataset> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      Result<GeneratedDataset> ds = MakeDataset(name, 0.02, 4321);
      EXPECT_TRUE(ds.ok()) << ds.status().ToString();
      it = cache.emplace(name, std::move(*ds)).first;
    }
    return it->second;
  }

  static const IndexSet& Indices(const std::string& name) {
    static std::map<std::string, IndexSet> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      const GeneratedDataset& ds = Dataset(name);
      Result<IndexSet> set = IndexSet::Build(ds.db, ds.schema);
      EXPECT_TRUE(set.ok()) << set.status().ToString();
      it = cache.emplace(name, std::move(*set)).first;
    }
    return it->second;
  }

  Result<BoundedPlan> MakePlan(const GeneratedDataset& ds, uint64_t seed) {
    QueryGenConfig cfg;
    cfg.seed = seed * 7919 + 17;
    cfg.num_sel = 2 + static_cast<int>(seed % 5);
    cfg.num_join = static_cast<int>(seed % 5);
    cfg.num_unidiff = static_cast<int>(seed % 3);
    BQE_ASSIGN_OR_RETURN(RaExprPtr q, GenerateCoveredQuery(ds, cfg));
    BQE_ASSIGN_OR_RETURN(NormalizedQuery nq, Normalize(q, ds.db.catalog()));
    BQE_ASSIGN_OR_RETURN(CoverageReport report, CheckCoverage(nq, ds.schema));
    return GeneratePlan(nq, report);
  }
};

TEST_P(PartitionedBuildDiffTest, PartitionedBuildsMatchSerialByteForByte) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);
  Result<BoundedPlan> plan = MakePlan(ds, param.seed);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, indices);
  ASSERT_TRUE(pp.ok()) << pp.status().ToString();

  ExecOptions base_opts;
  // Small batches so breakers see multi-batch build sides even on tiny data.
  base_opts.batch_size = param.seed % 7 == 0 ? 1 : size_t{16}
                                                       << (param.seed % 4);
  ExecStats serial_stats;
  Result<Table> serial = ExecutePhysicalPlan(*pp, &serial_stats, base_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (size_t threads : {2u, 4u}) {
    // Partitioned path forced on whenever the compile-time estimate picked
    // a partition count...
    ExecOptions part_opts = base_opts;
    part_opts.num_threads = threads;
    part_opts.partitioned_build_min_rows = 0;
    ExecStats part_stats;
    Result<Table> part = ExecutePhysicalPlan(*pp, &part_stats, part_opts);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    // ...and forced off (every breaker builds serially).
    ExecOptions ser_opts = base_opts;
    ser_opts.num_threads = threads;
    ser_opts.partitioned_build_min_rows = ~size_t{0};
    ExecStats ser_stats;
    Result<Table> serial_breaker = ExecutePhysicalPlan(*pp, &ser_stats, ser_opts);
    ASSERT_TRUE(serial_breaker.ok()) << serial_breaker.status().ToString();

    ASSERT_EQ(serial->NumRows(), part->NumRows()) << "threads=" << threads;
    ASSERT_EQ(serial->NumRows(), serial_breaker->NumRows());
    for (size_t r = 0; r < serial->NumRows(); ++r) {
      ASSERT_EQ(serial->rows()[r], part->rows()[r])
          << "partitioned row " << r << " threads=" << threads << " plan:\n"
          << plan->ToString();
      ASSERT_EQ(serial->rows()[r], serial_breaker->rows()[r])
          << "serial-breaker row " << r;
    }
    // Access accounting and breaker counts are path invariant.
    EXPECT_EQ(serial_stats.tuples_fetched, part_stats.tuples_fetched);
    EXPECT_EQ(serial_stats.fetch_probes, part_stats.fetch_probes);
    EXPECT_EQ(part_stats.build.breakers, ser_stats.build.breakers);
    EXPECT_EQ(ser_stats.build.partitioned, 0u);
  }
}

std::vector<DiffCase> AllCases() {
  std::vector<DiffCase> cases;
  for (const char* ds : {"airca", "tfacc", "mcbm"}) {
    for (uint64_t seed = 0; seed < 16; ++seed) {
      cases.push_back(DiffCase{ds, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Datasets, PartitionedBuildDiffTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// A join workload big enough that the partitioned path engages under the
// *default* threshold — pinning that the compile-time estimate really picks
// partition counts on realistic scales and that the default-path output
// still matches the serial executor.
TEST(PartitionedBuildEngagementTest, DefaultThresholdEngagesOnJoinWorkload) {
  Result<GeneratedDataset> ds_r = MakeDataset("airca", 0.25, 1234);
  ASSERT_TRUE(ds_r.ok());
  GeneratedDataset ds = std::move(*ds_r);
  Result<IndexSet> indices = IndexSet::Build(ds.db, ds.schema);
  ASSERT_TRUE(indices.ok());

  QueryGenConfig cfg;
  cfg.num_sel = 5;
  cfg.num_join = 4;
  cfg.seed = 4 * 13 + 3;  // The dominant bench_fig5_join airca cell.
  uint64_t partitioned = 0;
  int compared = 0;
  for (int i = 0; i < 8; ++i) {
    cfg.seed = cfg.seed * 31 + 1000 + static_cast<uint64_t>(i) * 17;
    Result<RaExprPtr> q = GenerateCoveredQuery(ds, cfg);
    if (!q.ok()) continue;
    Result<NormalizedQuery> nq = Normalize(*q, ds.db.catalog());
    ASSERT_TRUE(nq.ok());
    Result<CoverageReport> report = CheckCoverage(*nq, ds.schema);
    if (!report.ok() || !report->covered) continue;
    Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
    ASSERT_TRUE(plan.ok());
    Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, *indices);
    ASSERT_TRUE(pp.ok());

    Result<Table> serial = ExecutePhysicalPlan(*pp, nullptr, {});
    ASSERT_TRUE(serial.ok());
    ExecOptions opts;  // Default partitioned_build_min_rows.
    opts.num_threads = 4;
    ExecStats stats;
    Result<Table> par = ExecutePhysicalPlan(*pp, &stats, opts);
    ASSERT_TRUE(par.ok());
    ASSERT_EQ(serial->NumRows(), par->NumRows());
    for (size_t r = 0; r < serial->NumRows(); ++r) {
      ASSERT_EQ(serial->rows()[r], par->rows()[r]) << "row " << r;
    }
    partitioned += stats.build.partitioned;
    ++compared;
  }
  ASSERT_GT(compared, 0);
  EXPECT_GT(partitioned, 0u)
      << "no breaker engaged the partitioned build at 0.25-scale airca "
         "4-join — compile estimates or the runtime threshold regressed";
}

// ------------------------------------------- build-size feedback (EWMA) ---

/// The integer EWMA behind ObservedBuildRows/RecordBuildRows: first record
/// seeds the slot, repeats are stable, decays blend at 1/4 weight, and an
/// observed-empty build records the floor of 1 (distinguishing "saw an
/// empty build" from "never executed", which stays 0).
TEST(BuildFeedbackTest, EwmaSeedsBlendsAndFloors) {
  Result<GeneratedDataset> ds = MakeDataset("airca", 0.02, 4321);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  Result<IndexSet> indices = IndexSet::Build(ds->db, ds->schema);
  ASSERT_TRUE(indices.ok());
  QueryGenConfig cfg;
  cfg.num_join = 1;
  Result<RaExprPtr> q = GenerateCoveredQuery(*ds, cfg);
  ASSERT_TRUE(q.ok());
  Result<NormalizedQuery> nq = Normalize(*q, ds->db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, ds->schema);
  ASSERT_TRUE(report.ok());
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, *indices);
  ASSERT_TRUE(pp.ok());

  EXPECT_EQ(pp->ObservedBuildRows(0), 0u);  // Never executed.
  pp->RecordBuildRows(0, 100);
  EXPECT_EQ(pp->ObservedBuildRows(0), 100u);  // First record seeds exactly.
  pp->RecordBuildRows(0, 100);
  EXPECT_EQ(pp->ObservedBuildRows(0), 100u);  // Stable input is a fixpoint.
  pp->RecordBuildRows(0, 0);
  EXPECT_EQ(pp->ObservedBuildRows(0), 75u);  // 100 - 100/4 + 0/4.
  pp->RecordBuildRows(0, 200);
  EXPECT_EQ(pp->ObservedBuildRows(0), 107u);  // 75 - 75/4 + 200/4.
  pp->RecordBuildRows(1, 0);
  EXPECT_EQ(pp->ObservedBuildRows(1), 1u);  // Empty build floors at 1.
}

/// The repick scenario the feedback exists for: a union's compile-time
/// build hint comes from whole-index entry counts (here ~1200 rows -> 8
/// partitions), but the runtime candidate merge only ever sees the two
/// fetched friend lists (~40 rows — serial territory). The first execution
/// trusts the compile hint and partitions; every later execution of the
/// same cached plan prefers the observed size and drops to the serial
/// build, counting a repick — with byte-identical output throughout.
TEST(BuildFeedbackTest, ObservedBuildSizeOverridesStaleCompileHint) {
  using workload::GraphChurnFixture;
  using workload::MakeGraphChurnFixture;
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<IndexSet> indices = IndexSet::Build(fx.db, fx.schema);
  ASSERT_TRUE(indices.ok());

  auto fids_of = [](const std::string& occ, const std::string& pid) {
    return Project(
        Select(RelAs("friend", occ), {EqC(A(occ, "pid"), Value::Str(pid))}),
        {A(occ, "fid")});
  };
  RaExprPtr q =
      Union(fids_of("f0", fx.cfg.Pid(0)), fids_of("f1", fx.cfg.Pid(1)));
  Result<NormalizedQuery> nq = Normalize(q, fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx.schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, *indices);
  ASSERT_TRUE(pp.ok());

  Result<Table> serial = ExecutePhysicalPlan(*pp, nullptr, {});
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->NumRows(), 40u);  // Two disjoint 20-friend lists.

  ExecOptions opts;
  opts.num_threads = 4;
  opts.partitioned_build_min_rows = 0;  // Let the hint alone decide.
  auto run = [&](ExecStats* stats) {
    Result<Table> t = ExecutePhysicalPlan(*pp, stats, opts);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_EQ(t->NumRows(), serial->NumRows());
    for (size_t r = 0; r < serial->NumRows(); ++r) {
      ASSERT_EQ(t->rows()[r], serial->rows()[r]) << "row " << r;
    }
  };

  ExecStats first;
  run(&first);
  // Never-observed slots fall back to the compile hint exactly: the
  // overestimated union merge partitions, and no repick is counted.
  EXPECT_EQ(first.build.feedback_repicks, 0u);
  EXPECT_GT(first.build.partitioned, 0u);

  ExecStats second;
  run(&second);
  // Now the EWMA knows the real build is ~40 rows: the breaker re-picks
  // serial against the stale 8-partition hint.
  EXPECT_GE(second.build.feedback_repicks, 1u);
  EXPECT_EQ(second.build.partitioned, 0u);

  ExecStats third;
  run(&third);  // Stable observations keep preferring the observed size.
  EXPECT_GE(third.build.feedback_repicks, 1u);
  EXPECT_EQ(third.build.partitioned, 0u);
}

}  // namespace
}  // namespace bqe
