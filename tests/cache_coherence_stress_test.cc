#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rw_gate.h"
#include "core/engine.h"
#include "exec/physical_plan.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Stress coverage for schema-granular plan-cache coherence: data-only
/// Apply() batches interleaved with repeated Execute() of the same queries
/// must produce zero re-prepares while staying row-for-row identical to an
/// engine with no plan cache at all. The threaded variant exercises the
/// documented serving discipline (Apply externally serialized against
/// Execute via a shared_mutex) under ThreadSanitizer.

using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  // Force the vectorized executor so both engines emit the same row stream
  // (the row-path fallback is exercised by engine_test instead).
  opts.row_path_threshold = 0;
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
}

/// Prepares and compiles `q` from scratch against the engine's live
/// indices (bypassing the plan cache entirely) and executes it — the
/// "freshly-prepared plan" oracle. Over the same index state the row
/// *stream* must be byte-identical to the cached plan's; a fresh engine
/// would rebuild its mirrors in a different bucket layout and only agree
/// as a set.
Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(CacheCoherenceStressTest, HundredDataOnlyBatchesZeroReprepares) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(1));
  ASSERT_TRUE(engine.BuildIndices().ok());

  EngineOptions uncached_opts = DeterministicOptions(1);
  uncached_opts.plan_cache = false;

  std::vector<RaExprPtr> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  }

  // Warm the cache once; every later Execute must hit.
  for (const RaExprPtr& q : queries) {
    Result<ExecuteResult> r = engine.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->used_bounded_plan);
  }
  const uint64_t warm_misses = engine.plan_cache_stats().misses;
  const uint64_t schema0 = engine.SchemaEpoch();

  constexpr int kBatches = 120;
  for (int b = 0; b < kBatches; ++b) {
    Result<MaintenanceStats> st =
        engine.Apply(GraphChurnBatch(fx.cfg, "nf", b));
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ(st->constraints_grown, 0u) << "batch must stay data-only";

    // Differential, both ways: the cached plan must emit the exact row
    // stream of a freshly prepared+compiled plan over the same live
    // indices, and agree as a set with a from-scratch uncached engine
    // (whose rebuilt mirrors order buckets differently).
    BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
    ASSERT_TRUE(oracle.BuildIndices().ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      Result<ExecuteResult> cached = engine.Execute(queries[qi]);
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();
      EXPECT_TRUE(cached->plan_cache_hit)
          << "batch " << b << " query " << qi;
      std::string ctx =
          "batch " + std::to_string(b) + " query " + std::to_string(qi);
      ExpectRowForRowEqual(
          cached->table, FreshlyPreparedAnswer(engine, queries[qi], 1), ctx);
      Result<ExecuteResult> fresh = oracle.Execute(queries[qi]);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_TRUE(Table::SameSet(cached->table, fresh->table)) << ctx;
    }
  }

  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.reprepares, 0u);
  EXPECT_EQ(stats.misses, warm_misses) << "no re-prepare across data deltas";
  EXPECT_EQ(stats.hits,
            static_cast<uint64_t>(kBatches) * queries.size());
  EXPECT_EQ(engine.SchemaEpoch(), schema0);
  EXPECT_EQ(engine.DataEpoch(), static_cast<uint64_t>(kBatches));
}

TEST(CacheCoherenceStressTest, ConcurrentApplyAndExecuteStayCoherent) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  std::vector<RaExprPtr> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  }
  for (const RaExprPtr& q : queries) ASSERT_TRUE(engine.Execute(q).ok());

  // The engine's documented serving discipline: Apply() is a writer and
  // must be externally serialized against Execute(); concurrent const
  // Execute() calls are safe among themselves. WriterPriorityGate encodes
  // exactly that (including the writer-priority scheduling a plain
  // reader-preferring shared_mutex lacks), and ThreadSanitizer checks the
  // engine holds up its side. The serving layer (src/serve) runs the same
  // gate in production; this test and serve_stress_test keep both honest.
  WriterPriorityGate mu;
  constexpr int kWriterBatches = 60;
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int b = 0; b < kWriterBatches; ++b) {
      // Pace the deltas against reader progress so batches genuinely
      // interleave with cache-hitting executions instead of racing ahead.
      while (executed.load() < b && !failed.load()) std::this_thread::yield();
      {
        std::unique_lock<WriterPriorityGate> lk(mu);
        Result<MaintenanceStats> st =
            engine.Apply(GraphChurnBatch(fx.cfg, "nc", b));
        if (!st.ok() || st->constraints_grown != 0) failed.store(true);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t qi = static_cast<size_t>(t);
      while (!done.load()) {
        std::shared_lock<WriterPriorityGate> lk(mu);
        Result<ExecuteResult> r =
            engine.Execute(queries[qi++ % queries.size()]);
        if (!r.ok() || !r->used_bounded_plan) failed.store(true);
        executed.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(executed.load(), 0);

  // Post-delta answers from the (still cached) plans match a freshly
  // prepared plan row-for-row, and an independent uncached engine as a set.
  EngineOptions uncached_opts = DeterministicOptions(2);
  uncached_opts.plan_cache = false;
  BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
  ASSERT_TRUE(oracle.BuildIndices().ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Result<ExecuteResult> cached = engine.Execute(queries[qi]);
    ASSERT_TRUE(cached.ok());
    EXPECT_TRUE(cached->plan_cache_hit);
    std::string ctx = "post-delta query " + std::to_string(qi);
    ExpectRowForRowEqual(cached->table,
                         FreshlyPreparedAnswer(engine, queries[qi], 2), ctx);
    Result<ExecuteResult> fresh = oracle.Execute(queries[qi]);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Table::SameSet(cached->table, fresh->table)) << ctx;
  }
  EXPECT_EQ(engine.plan_cache_stats().reprepares, 0u);
}

}  // namespace
}  // namespace bqe
