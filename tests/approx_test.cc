#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "baseline/eval.h"
#include "core/approx.h"
#include "ra/builder.h"
#include "testutil.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ1;
using testutil::MakeQ2;

class ApproxTest : public ::testing::Test {
 protected:
  ApproxTest() : fx_(MakeGraphSearch()) {}

  ApproxResult Eval(const RaExprPtr& q, size_t budget) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    ApproxOptions opts;
    opts.budget_per_relation = budget;
    Result<ApproxResult> r = EvaluateApproximate(*nq, fx_.db, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : ApproxResult{};
  }

  Table Oracle(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok());
    Result<Table> t = EvaluateBaseline(*nq, fx_.db, nullptr);
    EXPECT_TRUE(t.ok());
    return t.ok() ? std::move(*t) : Table();
  }

  testutil::GraphSearchFixture fx_;
};

TEST_F(ApproxTest, ExactWithinBudget) {
  // Budget larger than every table: answer is exact.
  ApproxResult r = Eval(MakeQ1(), 1000);
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.truncated_tables.empty());
  EXPECT_EQ(r.possible.NumRows(), 0u);
  EXPECT_TRUE(Table::SameSet(r.certain, Oracle(MakeQ1())));
}

TEST_F(ApproxTest, MonotoneCertainIsSubsetOfAnswer) {
  // Budget 2 truncates dine (6 rows); the certain answer must be a subset
  // of the true answer.
  ApproxResult r = Eval(MakeQ1(), 2);
  EXPECT_FALSE(r.exact);
  Table oracle = Oracle(MakeQ1());
  std::set<std::string> truth;
  for (const Tuple& row : oracle.rows()) truth.insert(row[0].AsString());
  for (const Tuple& row : r.certain.rows()) {
    EXPECT_TRUE(truth.count(row[0].AsString()) > 0)
        << row[0].ToString() << " reported certain but not in Q(D)";
  }
}

TEST_F(ApproxTest, DiffWithTruncatedRightDemotesToPossible) {
  // Q0 = Q1 - Q2. Truncating dine makes Q2 incomplete: exclusions cannot
  // be certain, so certain is empty and possible brackets the answer.
  ApproxResult r = Eval(MakeQ0(), 2);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.certain.NumRows(), 0u);
  // The true answer rows must appear among certain U possible.
  Table oracle = Oracle(MakeQ0());
  std::set<std::string> reported;
  for (const Tuple& row : r.certain.rows()) reported.insert(row[0].AsString());
  for (const Tuple& row : r.possible.rows()) reported.insert(row[0].AsString());
  for (const Tuple& row : oracle.rows()) {
    EXPECT_TRUE(reported.count(row[0].AsString()) > 0)
        << row[0].ToString() << " lost by the envelope";
  }
}

TEST_F(ApproxTest, DiffWithCompleteRightStaysCertain) {
  // Keep cafe/friend truncations away: budget 100 covers everything, so
  // the difference is decided exactly.
  ApproxResult r = Eval(MakeQ0(), 100);
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(Table::SameSet(r.certain, Oracle(MakeQ0())));
}

TEST_F(ApproxTest, AccessRespectsBudget) {
  ApproxResult r = Eval(MakeQ1(), 3);
  // Q1 references friend, dine, cafe: at most 3 tuples each.
  EXPECT_LE(r.tuples_accessed, 9u);
}

TEST_F(ApproxTest, TruncatedTablesReported) {
  ApproxResult r = Eval(MakeQ2(), 2);
  ASSERT_EQ(r.truncated_tables.size(), 1u);
  EXPECT_EQ(r.truncated_tables[0], "dine");
}

TEST_F(ApproxTest, UnionCombinesEnvelopes) {
  RaExprPtr q = Union(MakeQ0(), CloneWithSuffix(MakeQ1(), "u9"));
  ApproxResult exact = Eval(q, 1000);
  EXPECT_TRUE(exact.exact);
  EXPECT_TRUE(Table::SameSet(exact.certain, Oracle(q)));
  ApproxResult rough = Eval(q, 2);
  EXPECT_FALSE(rough.exact);
  // Envelope property: certain subset of truth subset of certain+possible
  // (left inputs complete enough at this budget to keep the bracket).
  Table oracle = Oracle(q);
  std::set<std::string> truth, certain;
  for (const Tuple& row : oracle.rows()) truth.insert(row[0].AsString());
  for (const Tuple& row : rough.certain.rows()) {
    certain.insert(row[0].AsString());
    EXPECT_TRUE(truth.count(row[0].AsString()) > 0);
  }
}

/// Property sweep on the synthetic datasets: for random (possibly
/// non-covered) queries, the envelope invariants hold at every budget.
class ApproxPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ApproxPropertyTest, EnvelopeInvariants) {
  const auto& [name, seed] = GetParam();
  Result<GeneratedDataset> ds_r = MakeDataset(name, 0.01, 777);
  ASSERT_TRUE(ds_r.ok());
  GeneratedDataset ds = std::move(*ds_r);

  QueryGenConfig cfg;
  cfg.seed = static_cast<uint64_t>(seed);
  cfg.num_sel = 4;
  cfg.num_join = seed % 3;
  cfg.num_unidiff = seed % 2;
  cfg.uncovered_bias = 0.5;
  Result<RaExprPtr> q = GenerateQuery(ds, cfg);
  ASSERT_TRUE(q.ok());
  Result<NormalizedQuery> nq = Normalize(*q, ds.db.catalog());
  ASSERT_TRUE(nq.ok());

  Result<Table> oracle = EvaluateBaseline(*nq, ds.db, nullptr);
  ASSERT_TRUE(oracle.ok());

  for (size_t budget : {size_t{50}, size_t{100000}}) {
    ApproxOptions opts;
    opts.budget_per_relation = budget;
    Result<ApproxResult> r = EvaluateApproximate(*nq, ds.db, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Invariant 1: certain subset of the true answer.
    std::unordered_set<Tuple, TupleHash> truth(oracle->rows().begin(),
                                               oracle->rows().end());
    for (const Tuple& row : r->certain.rows()) {
      EXPECT_TRUE(truth.count(row) > 0) << name << " seed " << seed;
    }
    // Invariant 2: exact when nothing was truncated.
    if (r->truncated_tables.empty()) {
      EXPECT_TRUE(r->exact);
      EXPECT_TRUE(Table::SameSet(r->certain, *oracle));
      EXPECT_EQ(r->possible.NumRows(), 0u);
    }
    // Invariant 3: budget respected.
    EXPECT_LE(r->tuples_accessed,
              budget * ds.db.catalog().RelationNames().size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxPropertyTest,
    ::testing::Combine(::testing::Values("airca", "tfacc", "mcbm"),
                       ::testing::Range(0, 6)));

}  // namespace
}  // namespace bqe
