#include <gtest/gtest.h>

#include "constraints/actualize.h"
#include "core/cov.h"
#include "fd/fd.h"
#include "ra/builder.h"
#include "ra/normalize.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ0Prime;
using testutil::MakeQ1;
using testutil::MakeQ2;
using testutil::MakeQ3;

class CovTest : public ::testing::Test {
 protected:
  CovTest() : fx_(MakeGraphSearch(false)) {}

  CoverageReport Check(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    Result<CoverageReport> r = CheckCoverage(*nq, fx_.schema);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : CoverageReport();
  }

  testutil::GraphSearchFixture fx_;
};

// ------------------------------------------------------------ Unification ---

TEST_F(CovTest, UnificationMergesJoinedAttributes) {
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  ASSERT_EQ(spcs.size(), 1u);
  Result<Unification> uni = UnifySpc(spcs[0], *nq);
  ASSERT_TRUE(uni.ok());
  // friend.fid = dine.pid: same class (Example 5's rho_U(dine[pid]) = fid).
  EXPECT_EQ(uni->ClassOf(A("friend", "fid")), uni->ClassOf(A("dine", "pid")));
  // dine.cid = cafe.cid.
  EXPECT_EQ(uni->ClassOf(A("dine", "cid")), uni->ClassOf(A("cafe", "cid")));
  // friend.pid stays separate from friend.fid.
  EXPECT_NE(uni->ClassOf(A("friend", "pid")), uni->ClassOf(A("friend", "fid")));
}

TEST_F(CovTest, UnificationRecordsConstants) {
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  Result<Unification> uni = UnifySpc(spcs[0], *nq);
  ASSERT_TRUE(uni.ok());
  int pid_class = uni->ClassOf(A("friend", "pid"));
  ASSERT_GE(pid_class, 0);
  EXPECT_TRUE(uni->class_has_const[static_cast<size_t>(pid_class)]);
  EXPECT_EQ(uni->class_const[static_cast<size_t>(pid_class)], Value::Str("p0"));
  EXPECT_FALSE(uni->unsatisfiable);
}

TEST_F(CovTest, ConflictingConstantsDetected) {
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "city"), Value::Str("nyc")),
                           EqC(A("cafe", "city"), Value::Str("sf"))}),
      {A("cafe", "cid")});
  CoverageReport r = Check(q);
  ASSERT_EQ(r.spcs.size(), 1u);
  EXPECT_TRUE(r.spcs[0].uni.unsatisfiable);
  EXPECT_TRUE(r.covered);  // Trivially covered: empty on every instance.
}

TEST_F(CovTest, ConstantsPropagateThroughEqualities) {
  // x = y and y = 'c' binds both classes... they are one class.
  RaExprPtr q = Project(
      Select(Rel("dine"), {EqA(A("dine", "pid"), A("dine", "cid")),
                           EqC(A("dine", "cid"), Value::Str("c1"))}),
      {A("dine", "pid")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  Result<Unification> uni = UnifySpc(spcs[0], *nq);
  ASSERT_TRUE(uni.ok());
  int c = uni->ClassOf(A("dine", "pid"));
  EXPECT_TRUE(uni->class_has_const[static_cast<size_t>(c)]);
}

// ------------------------------------------------- Example 4 of the paper ---

TEST_F(CovTest, Q1IsCoveredByA0) {
  CoverageReport r = Check(MakeQ1());
  EXPECT_TRUE(r.covered) << r.Explain();
  EXPECT_TRUE(r.fetchable);
  EXPECT_TRUE(r.indexed);
}

TEST_F(CovTest, Q2IsNotCoveredByA0) {
  CoverageReport r = Check(MakeQ2());
  EXPECT_FALSE(r.covered);
  EXPECT_FALSE(r.fetchable);  // cov(Q2, A0) = {p0} but X_Q2 = {pid, cid}.
  ASSERT_EQ(r.spcs.size(), 1u);
  // cid's class must not be covered.
  int cid_class = r.spcs[0].uni.ClassOf(A("dine", "cid"));
  EXPECT_FALSE(r.spcs[0].cov[static_cast<size_t>(cid_class)]);
  // pid's class is covered (constant).
  int pid_class = r.spcs[0].uni.ClassOf(A("dine", "pid"));
  EXPECT_TRUE(r.spcs[0].cov[static_cast<size_t>(pid_class)]);
}

TEST_F(CovTest, Q3IsCoveredByA0) {
  CoverageReport r = Check(MakeQ3());
  EXPECT_TRUE(r.covered) << r.Explain();
}

TEST_F(CovTest, Q0IsNotCoveredButQ0PrimeIs) {
  EXPECT_FALSE(Check(MakeQ0()).covered);
  EXPECT_TRUE(Check(MakeQ0Prime()).covered);
}

TEST_F(CovTest, IndexConstraintChoices) {
  CoverageReport r = Check(MakeQ1());
  ASSERT_EQ(r.spcs.size(), 1u);
  const SpcCoverage& sc = r.spcs[0];
  // friend indexed by psi1, dine by psi2, cafe by psi4 (Example 4) — checked
  // through the actualized constraints' source ids.
  ASSERT_EQ(sc.index_constraint.size(), 3u);
  EXPECT_EQ(r.actualized.at(sc.index_constraint.at("friend")).source_id,
            fx_.psi1);
  EXPECT_EQ(r.actualized.at(sc.index_constraint.at("dine")).source_id,
            fx_.psi2);
  EXPECT_EQ(r.actualized.at(sc.index_constraint.at("cafe")).source_id,
            fx_.psi4);
}

// --------------------------------------------------------------- Lemma 4 ---

TEST_F(CovTest, FetchableEquivalentToFdImplication) {
  for (const RaExprPtr& q : {MakeQ1(), MakeQ2(), MakeQ3()}) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    ASSERT_TRUE(nq.ok());
    Result<CoverageReport> r = CheckCoverage(*nq, fx_.schema);
    ASSERT_TRUE(r.ok());
    for (const SpcCoverage& sc : r->spcs) {
      bool implies = FdImplies(sc.uni.num_classes, sc.induced_fds,
                               sc.xc_classes, sc.xq_classes);
      EXPECT_EQ(sc.fetchable, implies);
    }
  }
}

// ------------------------------------------------------ Induced FDs shape ---

TEST_F(CovTest, InducedFdsMatchExample5) {
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r = CheckCoverage(*nq, fx_.schema);
  ASSERT_TRUE(r.ok());
  const SpcCoverage& sc = r->spcs[0];
  // Example 5: pid -> fid, (fid, year, month) -> cid, (fid,cid) -> (fid,cid),
  // cid -> city. One induced FD per actualized constraint on Q1's relations.
  EXPECT_EQ(sc.induced_fds.size(), 4u);
  // The psi2 FD must have the classes of {dine.pid (= friend.fid),
  // dine.year, dine.month} on its lhs and dine.cid's class on the rhs.
  bool found = false;
  int fid = sc.uni.ClassOf(A("friend", "fid"));
  int cid = sc.uni.ClassOf(A("dine", "cid"));
  for (const Fd& fd : sc.induced_fds) {
    if (fd.lhs.size() == 3 &&
        std::find(fd.lhs.begin(), fd.lhs.end(), fid) != fd.lhs.end() &&
        fd.rhs == std::vector<int>{cid}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------- Indexed condition details ---

TEST_F(CovTest, FetchableButNotIndexed) {
  // All attrs covered, but no constraint spans {pid, month} of dine:
  // pi_{month}(dine where pid = 'p0' and cid = 'c1'): covered attrs pid, cid
  // via constants; month via... no constraint yields month. Use a schema
  // where month is covered but the spanning condition fails.
  AccessSchema schema;  // Fresh schema: month has a finite domain.
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("dine(() -> (month), 12)"),
                         fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(
      Select(Rel("dine"), {EqC(A("dine", "pid"), Value::Str("p0")),
                           EqC(A("dine", "cid"), Value::Str("c1"))}),
      {A("dine", "month")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r = CheckCoverage(*nq, schema);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->fetchable) << r->Explain();
  // () -> month spans only {month}, but X_Q's dine attrs are
  // {pid, cid, month}: not indexed.
  EXPECT_FALSE(r->indexed);
  EXPECT_FALSE(r->covered);
}

TEST_F(CovTest, WiderConstraintRestoresIndexing) {
  AccessSchema schema;
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse(
                             "dine((pid, cid) -> (month, year), 40)"),
                         fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(
      Select(Rel("dine"), {EqC(A("dine", "pid"), Value::Str("p0")),
                           EqC(A("dine", "cid"), Value::Str("c1"))}),
      {A("dine", "month")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r = CheckCoverage(*nq, schema);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->covered) << r->Explain();
}

TEST_F(CovTest, EmptySchemaOnlyCoversConstantQueries) {
  AccessSchema empty;
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "cid"), Value::Str("c1"))}),
      {A("cafe", "cid")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r = CheckCoverage(*nq, empty);
  ASSERT_TRUE(r.ok());
  // Fetchable (cid is a constant) but not indexed (no constraint on cafe).
  EXPECT_TRUE(r->fetchable);
  EXPECT_FALSE(r->indexed);
}

TEST_F(CovTest, EmptyLhsConstraintSeedsCoverage) {
  AccessSchema schema;
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("cafe(() -> (cid), 50)"),
                         fx_.db.catalog())
                  .ok());
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("cafe((cid) -> (city), 1)"),
                         fx_.db.catalog())
                  .ok());
  // No constants at all: pi_{city}(cafe) — cid from () -> cid, city via cid.
  RaExprPtr q = Project(Rel("cafe"), {A("cafe", "city")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r = CheckCoverage(*nq, schema);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->covered) << r->Explain();
}

TEST_F(CovTest, UnionRequiresBothBranchesCovered) {
  RaExprPtr q = Union(MakeQ1(), MakeQ2("dine9"));
  CoverageReport r = Check(q);
  EXPECT_FALSE(r.covered);
  ASSERT_EQ(r.spcs.size(), 2u);
  EXPECT_TRUE(r.spcs[0].covered());
  EXPECT_FALSE(r.spcs[1].covered());
}

TEST_F(CovTest, ExplainMentionsFailure) {
  CoverageReport r = Check(MakeQ2());
  std::string e = r.Explain();
  EXPECT_NE(e.find("NOT covered"), std::string::npos);
  EXPECT_NE(e.find("NOT fetchable"), std::string::npos);
}

TEST_F(CovTest, MonotoneInSchema) {
  // Coverage is monotone: a covered query stays covered with more
  // constraints.
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  AccessSchema bigger = fx_.schema;
  ASSERT_TRUE(bigger.Add(*AccessConstraint::Parse("friend(() -> (pid), 100)"),
                         fx_.db.catalog())
                  .ok());
  Result<CoverageReport> small = CheckCoverage(*nq, fx_.schema);
  Result<CoverageReport> big = CheckCoverage(*nq, bigger);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(small->covered);
  EXPECT_TRUE(big->covered);
  // cov only grows.
  for (size_t i = 0; i < small->spcs.size(); ++i) {
    for (int c = 0; c < small->spcs[i].uni.num_classes; ++c) {
      if (small->spcs[i].cov[static_cast<size_t>(c)]) {
        EXPECT_TRUE(big->spcs[i].cov[static_cast<size_t>(c)]);
      }
    }
  }
}

// ---------------------------------------------------------- Degenerate SPC ---

TEST_F(CovTest, RelationWithoutNeededAttrs) {
  // friend appears only existentially: pi_{cid}(sigma_{cid='c1'}(cafe x
  // friend)). friend contributes nothing to X_Q; it is indexed by any
  // constraint with covered X (psi1 needs pid — not covered). Expect NOT
  // covered under A0 (cannot boundedly check friend's non-emptiness).
  RaExprPtr q = Project(
      Select(Product(Rel("cafe"), Rel("friend")),
             {EqC(A("cafe", "cid"), Value::Str("c1"))}),
      {A("cafe", "cid")});
  CoverageReport r = Check(q);
  EXPECT_FALSE(r.covered);
  // Adding friend(() -> (pid), N) makes it coverable.
  AccessSchema bigger = fx_.schema;
  ASSERT_TRUE(bigger.Add(*AccessConstraint::Parse("friend(() -> (pid), 1000)"),
                         fx_.db.catalog())
                  .ok());
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> r2 = CheckCoverage(*nq, bigger);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->covered) << r2->Explain();
}

}  // namespace
}  // namespace bqe
