#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "constraints/index.h"
#include "exec/key_codec.h"
#include "storage/database.h"
#include "testutil.h"

namespace bqe {
namespace {

/// Tests of the AccessIndex frozen columnar mirror's incremental
/// maintenance: ApplyInsert/ApplyDelete patch the affected bucket (base +
/// overflow row lists) instead of invalidating the whole mirror, and
/// FrozenProbe stays consistent with the Fetch() oracle across arbitrary
/// delta interleavings.

/// Boxes the rows a FrozenProbe returns, via the segment API.
std::vector<Tuple> ProbeTuples(const AccessIndex& idx, const Tuple& xkey) {
  idx.EnsureFrozen();
  std::string key;
  AppendEncodedTuple(xkey, &key);
  FrozenSegment segs[2];
  size_t ns = idx.FrozenProbe(key, segs);
  std::vector<Tuple> out;
  for (size_t k = 0; k < ns; ++k) {
    const FrozenSegment& s = segs[k];
    if (s.rows != nullptr) {
      for (uint32_t i = 0; i < s.n; ++i) {
        out.push_back(s.batch->RowToTuple(s.rows[i]));
      }
    } else {
      for (uint32_t r = s.begin; r < s.end; ++r) {
        out.push_back(s.batch->RowToTuple(r));
      }
    }
  }
  return out;
}

/// Set equality between the mirror's view of a bucket and the map-backed
/// Fetch() oracle.
void ExpectBucketMatches(const AccessIndex& idx, const Tuple& xkey) {
  std::vector<Tuple> mirror = ProbeTuples(idx, xkey);
  std::vector<Tuple> oracle = idx.Fetch(xkey);
  auto key_of = [](const Tuple& t) {
    std::string k;
    AppendEncodedTuple(t, &k);
    return k;
  };
  std::multiset<std::string> m, o;
  for (const Tuple& t : mirror) m.insert(key_of(t));
  for (const Tuple& t : oracle) o.insert(key_of(t));
  EXPECT_EQ(m, o) << "bucket mismatch: mirror " << mirror.size()
                  << " rows, oracle " << oracle.size() << " rows";
}

class IndexMirrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = testutil::MakeGraphSearch();
    const Table* dine = fx_.db.Require("dine").value();
    AccessConstraint c =
        AccessConstraint::Parse("dine((pid) -> (cid, month), 64)").value();
    c.id = 0;
    Result<AccessIndex> idx = AccessIndex::Build(*dine, c);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    idx_ = std::make_unique<AccessIndex>(std::move(*idx));
  }

  Tuple Row(const char* pid, const char* cid, int64_t month, int64_t year) {
    return {Value::Str(pid), Value::Str(cid), Value::Int(month),
            Value::Int(year)};
  }

  testutil::GraphSearchFixture fx_;
  std::unique_ptr<AccessIndex> idx_;
};

TEST_F(IndexMirrorTest, FreshMirrorMatchesOracle) {
  for (const char* pid : {"p0", "f1", "f2", "nobody"}) {
    ExpectBucketMatches(*idx_, {Value::Str(pid)});
  }
}

TEST_F(IndexMirrorTest, InsertPatchesBucketWithoutRebuild) {
  idx_->EnsureFrozen();
  uint64_t e0 = idx_->epoch();
  // New row for an existing key: the bucket gains an overflow entry.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c9", 3, 2016)).ok());
  EXPECT_GT(idx_->epoch(), e0);
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  // Untouched buckets still resolve through their contiguous base range.
  ExpectBucketMatches(*idx_, {Value::Str("f2")});
}

TEST_F(IndexMirrorTest, InsertNewKeyCreatesOverflowBucket) {
  idx_->EnsureFrozen();
  ASSERT_TRUE(idx_->ApplyInsert(Row("f9", "c1", 7, 2016)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f9")});
  ASSERT_TRUE(idx_->ApplyInsert(Row("f9", "c2", 8, 2016)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f9")});
}

TEST_F(IndexMirrorTest, DuplicateInsertLeavesMirrorAlone) {
  idx_->EnsureFrozen();
  // (pid -> cid, month) projection of this row already exists: refcount
  // bump only, distinct entry set unchanged.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c1", 5, 2017)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  // Deleting one of the two copies keeps the entry.
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c1", 5, 2017)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
}

TEST_F(IndexMirrorTest, DeletePatchesBaseRow) {
  idx_->EnsureFrozen();
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c1", 5, 2015)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  EXPECT_EQ(ProbeTuples(*idx_, {Value::Str("f1")}).size(), 1u);
}

TEST_F(IndexMirrorTest, DeleteWholeBucketLeavesEmptyProbe) {
  idx_->EnsureFrozen();
  ASSERT_TRUE(idx_->ApplyDelete(Row("p0", "c1", 1, 2014)).ok());
  ASSERT_TRUE(idx_->ApplyDelete(Row("p0", "c4", 2, 2015)).ok());
  EXPECT_TRUE(ProbeTuples(*idx_, {Value::Str("p0")}).empty());
  EXPECT_TRUE(idx_->Fetch({Value::Str("p0")}).empty());
}

TEST_F(IndexMirrorTest, InsertDeleteInterleavingStaysConsistent) {
  idx_->EnsureFrozen();
  // A chain of deltas against one hot key plus collateral on others. Probe
  // between every delta: interleavings must never observe a stale bucket.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c5", 1, 2016)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c2", 5, 2015)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c2", 5, 2015)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c5", 1, 2016)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  ASSERT_TRUE(idx_->ApplyInsert(Row("f2", "c5", 2, 2016)).ok());
  ExpectBucketMatches(*idx_, {Value::Str("f2")});
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
}

TEST_F(IndexMirrorTest, PatchBudgetForcesCleanRebuild) {
  idx_->EnsureFrozen();
  // Far more distinct-entry deltas than the patch budget (entries/4 + 64):
  // the mirror must rebuild itself and stay consistent afterwards.
  for (int i = 0; i < 300; ++i) {
    std::string cid = "c" + std::to_string(i);
    ASSERT_TRUE(idx_->ApplyInsert({Value::Str("bulk"), Value::Str(cid),
                                   Value::Int(i % 12 + 1), Value::Int(2000)})
                    .ok());
  }
  ExpectBucketMatches(*idx_, {Value::Str("bulk")});
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  for (int i = 0; i < 300; ++i) {
    std::string cid = "c" + std::to_string(i);
    ASSERT_TRUE(idx_->ApplyDelete({Value::Str("bulk"), Value::Str(cid),
                                   Value::Int(i % 12 + 1), Value::Int(2000)})
                    .ok());
  }
  EXPECT_TRUE(ProbeTuples(*idx_, {Value::Str("bulk")}).empty());
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
}

TEST_F(IndexMirrorTest, EpochIsMonotonic) {
  uint64_t e0 = idx_->epoch();
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c9", 3, 2016)).ok());
  uint64_t e1 = idx_->epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c9", 3, 2016)).ok());
  uint64_t e2 = idx_->epoch();
  EXPECT_GT(e2, e1);
  idx_->SetBound(128);
  EXPECT_GT(idx_->epoch(), e2);
}

TEST_F(IndexMirrorTest, DataAndBoundsEpochsMoveIndependently) {
  // Plan-cache coherence hangs off this split: data deltas must not move
  // the bounds epoch (plans stay cached), and SetBound must not hide behind
  // the data epoch (plans must invalidate).
  uint64_t d0 = idx_->data_epoch();
  uint64_t b0 = idx_->bounds_epoch();
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c9", 3, 2016)).ok());
  ASSERT_TRUE(idx_->ApplyDelete(Row("f1", "c9", 3, 2016)).ok());
  EXPECT_EQ(idx_->data_epoch(), d0 + 2);
  EXPECT_EQ(idx_->bounds_epoch(), b0);
  idx_->SetBound(128);
  EXPECT_EQ(idx_->data_epoch(), d0 + 2);
  EXPECT_EQ(idx_->bounds_epoch(), b0 + 1);
}

TEST_F(IndexMirrorTest, RebuildResetsPatchBudgetAndPatchesReengage) {
  // Audit of the patch accounting: a forced clean rebuild must reset
  // patch_ops, so the index goes back to O(1) patching instead of being
  // permanently pinned in invalidate-and-rebuild mode.
  idx_->EnsureFrozen();
  uint64_t gen0 = idx_->mirror_generation();
  // Blow the budget (entries/4 + 64 for this small index).
  for (int i = 0; i < 300; ++i) {
    std::string cid = "c" + std::to_string(i);
    ASSERT_TRUE(idx_->ApplyInsert({Value::Str("bulk"), Value::Str(cid),
                                   Value::Int(i % 12 + 1), Value::Int(2000)})
                    .ok());
  }
  // The pending rebuild is already visible to coherence checks...
  EXPECT_EQ(idx_->mirror_generation(), gen0 + 1);
  idx_->EnsureFrozen();  // ...and completing it does not double-count.
  EXPECT_EQ(idx_->mirror_generation(), gen0 + 1);
  EXPECT_EQ(idx_->mirror_patch_ops(), 0u);

  // Post-rebuild deltas patch in place again: one patch op, no new
  // generation, bucket consistent with the oracle.
  ASSERT_TRUE(idx_->ApplyInsert(Row("f1", "c999", 6, 2017)).ok());
  EXPECT_EQ(idx_->mirror_patch_ops(), 1u);
  EXPECT_EQ(idx_->mirror_generation(), gen0 + 1);
  ExpectBucketMatches(*idx_, {Value::Str("f1")});
  ExpectBucketMatches(*idx_, {Value::Str("bulk")});

  // And the cycle repeats: a second churn wave rebuilds once more.
  for (int i = 0; i < 400; ++i) {
    std::string cid = "d" + std::to_string(i);
    ASSERT_TRUE(idx_->ApplyInsert({Value::Str("bulk2"), Value::Str(cid),
                                   Value::Int(i % 12 + 1), Value::Int(2001)})
                    .ok());
  }
  EXPECT_EQ(idx_->mirror_generation(), gen0 + 2);
  ExpectBucketMatches(*idx_, {Value::Str("bulk2")});
}

}  // namespace
}  // namespace bqe
