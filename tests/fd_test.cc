#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fd/fd.h"
#include "fd/union_find.h"

namespace bqe {
namespace {

// ------------------------------------------------------------- UnionFind ---

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.NumClasses(), 4);
  EXPECT_FALSE(uf.Same(0, 1));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));  // Already same.
  EXPECT_EQ(uf.NumClasses(), 3);
}

TEST(UnionFindTest, Transitivity) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Same(0, 2));
  EXPECT_FALSE(uf.Same(2, 3));
  EXPECT_EQ(uf.NumClasses(), 2);
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf(1);
  int id = uf.Add();
  EXPECT_EQ(id, 1);
  EXPECT_EQ(uf.NumClasses(), 2);
}

TEST(UnionFindTest, DenseClassIdsStable) {
  UnionFind uf(5);
  uf.Union(0, 2);
  uf.Union(1, 4);
  std::vector<int> dense = uf.DenseClassIds();
  ASSERT_EQ(dense.size(), 5u);
  EXPECT_EQ(dense[0], dense[2]);
  EXPECT_EQ(dense[1], dense[4]);
  EXPECT_NE(dense[0], dense[1]);
  EXPECT_NE(dense[3], dense[0]);
  // Dense ids form a contiguous range starting at 0.
  int max_id = *std::max_element(dense.begin(), dense.end());
  EXPECT_EQ(max_id, 2);
}

TEST(UnionFindTest, LargeChain) {
  const int n = 1000;
  UnionFind uf(n);
  for (int i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.NumClasses(), 1);
  EXPECT_TRUE(uf.Same(0, n - 1));
}

// ------------------------------------------------------------- FdClosure ---

TEST(FdClosureTest, SeedOnly) {
  std::vector<bool> cl = FdClosure(3, {}, {1});
  EXPECT_FALSE(cl[0]);
  EXPECT_TRUE(cl[1]);
  EXPECT_FALSE(cl[2]);
}

TEST(FdClosureTest, SingleStep) {
  std::vector<Fd> fds = {{{0}, {1}, 0}};
  std::vector<bool> cl = FdClosure(2, fds, {0});
  EXPECT_TRUE(cl[0]);
  EXPECT_TRUE(cl[1]);
}

TEST(FdClosureTest, ChainPropagates) {
  std::vector<Fd> fds = {{{0}, {1}, 0}, {{1}, {2}, 1}, {{2}, {3}, 2}};
  std::vector<bool> cl = FdClosure(4, fds, {0});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(cl[static_cast<size_t>(i)]);
}

TEST(FdClosureTest, MultiAttributeLhsNeedsAll) {
  std::vector<Fd> fds = {{{0, 1}, {2}, 0}};
  std::vector<bool> only0 = FdClosure(3, fds, {0});
  EXPECT_FALSE(only0[2]);
  std::vector<bool> both = FdClosure(3, fds, {0, 1});
  EXPECT_TRUE(both[2]);
}

TEST(FdClosureTest, EmptyLhsFiresUnconditionally) {
  std::vector<Fd> fds = {{{}, {0}, 0}, {{0}, {1}, 1}};
  std::vector<bool> cl = FdClosure(2, fds, {});
  EXPECT_TRUE(cl[0]);
  EXPECT_TRUE(cl[1]);
}

TEST(FdClosureTest, DuplicateLhsEntriesHandled) {
  // lhs with a repeated attribute must still fire once 0 is reached.
  std::vector<Fd> fds = {{{0, 0}, {1}, 0}};
  std::vector<bool> cl = FdClosure(2, fds, {0});
  EXPECT_TRUE(cl[1]);
}

TEST(FdClosureTest, NoSpuriousDerivation) {
  std::vector<Fd> fds = {{{0}, {1}, 0}, {{2}, {3}, 1}};
  std::vector<bool> cl = FdClosure(4, fds, {0});
  EXPECT_TRUE(cl[1]);
  EXPECT_FALSE(cl[2]);
  EXPECT_FALSE(cl[3]);
}

TEST(FdImpliesTest, BasicImplication) {
  std::vector<Fd> fds = {{{0}, {1}, 0}, {{1}, {2}, 1}};
  EXPECT_TRUE(FdImplies(3, fds, {0}, {2}));
  EXPECT_FALSE(FdImplies(3, fds, {1}, {0}));
  EXPECT_TRUE(FdImplies(3, fds, {0}, {0, 1, 2}));
}

TEST(FdImpliesTest, ReflexivityAlwaysHolds) {
  EXPECT_TRUE(FdImplies(2, {}, {0, 1}, {0}));
  EXPECT_TRUE(FdImplies(2, {}, {}, {}));
}

/// Brute-force reference closure: repeatedly apply FDs until fix point.
std::vector<bool> NaiveClosure(int n, const std::vector<Fd>& fds,
                               const std::vector<int>& seed) {
  std::vector<bool> cl(static_cast<size_t>(n), false);
  for (int a : seed) cl[static_cast<size_t>(a)] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      bool all = true;
      for (int a : fd.lhs) {
        if (!cl[static_cast<size_t>(a)]) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      for (int b : fd.rhs) {
        if (!cl[static_cast<size_t>(b)]) {
          cl[static_cast<size_t>(b)] = true;
          changed = true;
        }
      }
    }
  }
  return cl;
}

/// Property test: the linear-time closure matches the naive fix point on
/// random FD sets.
class FdClosureRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FdClosureRandomTest, MatchesNaiveClosure) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(2, 14));
  std::vector<Fd> fds;
  const int num_fds = static_cast<int>(rng.UniformInt(0, 20));
  for (int i = 0; i < num_fds; ++i) {
    Fd fd;
    int lhs_size = static_cast<int>(rng.UniformInt(0, 3));
    for (int k = 0; k < lhs_size; ++k) {
      fd.lhs.push_back(static_cast<int>(rng.UniformInt(0, n - 1)));
    }
    int rhs_size = static_cast<int>(rng.UniformInt(1, 3));
    for (int k = 0; k < rhs_size; ++k) {
      fd.rhs.push_back(static_cast<int>(rng.UniformInt(0, n - 1)));
    }
    fds.push_back(std::move(fd));
  }
  std::vector<int> seed;
  int seed_size = static_cast<int>(rng.UniformInt(0, 3));
  for (int k = 0; k < seed_size; ++k) {
    seed.push_back(static_cast<int>(rng.UniformInt(0, n - 1)));
  }
  EXPECT_EQ(FdClosure(n, fds, seed), NaiveClosure(n, fds, seed))
      << "n=" << n << " #fds=" << fds.size();
}

INSTANTIATE_TEST_SUITE_P(RandomFdSets, FdClosureRandomTest,
                         ::testing::Range(0, 40));

TEST(FdTest, ToStringMentionsConstraint) {
  Fd fd{{0, 1}, {2}, 7};
  EXPECT_EQ(fd.ToString(), "{0,1} -> {2} [phi7]");
}

}  // namespace
}  // namespace bqe
