#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "baseline/eval.h"
#include "constraints/index.h"
#include "core/cov.h"
#include "core/plan_exec.h"
#include "core/qplan.h"
#include "exec/parallel.h"
#include "exec/physical_plan.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

/// Differential testing of the compiled executor and the morsel-driven
/// parallel executor: random bounded plans are compiled once
/// (PhysicalPlan::Compile) and executed single- and multi-threaded; result
/// sets, access accounting (probes, fetched tuples), and output row counts
/// must be identical. The same 48 dataset/seed cases as
/// vec_differential_test.cc.

struct DiffCase {
  const char* dataset;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  return std::string(info.param.dataset) + "_s" +
         std::to_string(info.param.seed);
}

class ParallelExecTest : public ::testing::TestWithParam<DiffCase> {
 protected:
  static const GeneratedDataset& Dataset(const std::string& name) {
    static std::map<std::string, GeneratedDataset> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      Result<GeneratedDataset> ds = MakeDataset(name, 0.02, 4321);
      EXPECT_TRUE(ds.ok()) << ds.status().ToString();
      it = cache.emplace(name, std::move(*ds)).first;
    }
    return it->second;
  }

  static const IndexSet& Indices(const std::string& name) {
    static std::map<std::string, IndexSet> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      const GeneratedDataset& ds = Dataset(name);
      Result<IndexSet> set = IndexSet::Build(ds.db, ds.schema);
      EXPECT_TRUE(set.ok()) << set.status().ToString();
      it = cache.emplace(name, std::move(*set)).first;
    }
    return it->second;
  }

  Result<BoundedPlan> MakePlan(const GeneratedDataset& ds, uint64_t seed) {
    QueryGenConfig cfg;
    cfg.seed = seed * 7919 + 17;
    cfg.num_sel = 2 + static_cast<int>(seed % 5);
    cfg.num_join = static_cast<int>(seed % 5);
    cfg.num_unidiff = static_cast<int>(seed % 3);
    BQE_ASSIGN_OR_RETURN(RaExprPtr q, GenerateCoveredQuery(ds, cfg));
    BQE_ASSIGN_OR_RETURN(NormalizedQuery nq, Normalize(q, ds.db.catalog()));
    BQE_ASSIGN_OR_RETURN(CoverageReport report, CheckCoverage(nq, ds.schema));
    return GeneratePlan(nq, report);
  }
};

TEST_P(ParallelExecTest, ParallelMatchesSerialCompiled) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);
  Result<BoundedPlan> plan = MakePlan(ds, param.seed);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, indices);
  ASSERT_TRUE(pp.ok()) << pp.status().ToString();

  ExecOptions serial_opts;
  // Small batches so plans produce multiple morsels even on tiny data.
  serial_opts.batch_size = param.seed % 7 == 0 ? 1 : size_t{16}
                                                         << (param.seed % 4);
  ExecStats serial_stats;
  Result<Table> serial = ExecutePhysicalPlan(*pp, &serial_stats, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (size_t threads : {2u, 4u}) {
    ExecOptions par_opts = serial_opts;
    par_opts.num_threads = threads;
    ExecStats par_stats;
    Result<Table> par = ExecutePhysicalPlan(*pp, &par_stats, par_opts);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_TRUE(Table::SameSet(*serial, *par))
        << "threads=" << threads << " plan:\n"
        << plan->ToString() << "\nserial: " << serial->NumRows()
        << " rows, parallel: " << par->NumRows() << " rows";
    // The parallel row *stream* is specified to equal the serial one, not
    // just the set: morsel outputs are merged in morsel order.
    ASSERT_EQ(serial->NumRows(), par->NumRows());
    for (size_t r = 0; r < serial->NumRows(); ++r) {
      EXPECT_EQ(serial->rows()[r], par->rows()[r]) << "row " << r;
    }
    // Access accounting is thread-count invariant.
    EXPECT_EQ(serial_stats.tuples_fetched, par_stats.tuples_fetched);
    EXPECT_EQ(serial_stats.fetch_probes, par_stats.fetch_probes);
    EXPECT_EQ(serial_stats.output_rows, par_stats.output_rows);
    EXPECT_EQ(serial_stats.intermediate_rows, par_stats.intermediate_rows);
  }
}

TEST_P(ParallelExecTest, ParallelMatchesBaselineOracle) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);

  QueryGenConfig cfg;
  cfg.seed = param.seed * 7919 + 17;
  cfg.num_sel = 2 + static_cast<int>(param.seed % 5);
  cfg.num_join = static_cast<int>(param.seed % 5);
  cfg.num_unidiff = static_cast<int>(param.seed % 3);
  Result<RaExprPtr> q = GenerateCoveredQuery(ds, cfg);
  ASSERT_TRUE(q.ok());
  Result<NormalizedQuery> nq = Normalize(*q, ds.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, ds.schema);
  ASSERT_TRUE(report.ok());
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());

  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, indices);
  ASSERT_TRUE(pp.ok());
  ExecOptions opts;
  opts.num_threads = 4;
  Result<Table> par = ExecutePhysicalPlan(*pp, nullptr, opts);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  Result<Table> oracle = EvaluateBaseline(*nq, ds.db, nullptr);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(Table::SameSet(*par, *oracle))
      << "plan:\n"
      << plan->ToString() << "\nparallel: " << par->NumRows()
      << " rows, baseline: " << oracle->NumRows() << " rows";
}

TEST_P(ParallelExecTest, RowPathFallbackMatches) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);
  Result<BoundedPlan> plan = MakePlan(ds, param.seed);
  ASSERT_TRUE(plan.ok());
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, indices);
  ASSERT_TRUE(pp.ok());

  Result<Table> vec = ExecutePhysicalPlan(*pp, nullptr, {});
  ASSERT_TRUE(vec.ok());
  // A huge threshold forces the adaptive row-at-a-time fallback.
  ExecOptions row_opts;
  row_opts.row_path_threshold = ~size_t{0};
  ExecStats row_stats;
  Result<Table> row = ExecutePhysicalPlan(*pp, &row_stats, row_opts);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(Table::SameSet(*vec, *row));
  EXPECT_EQ(vec->ColumnTypes(), row->ColumnTypes());
}

TEST_F(ParallelExecTest, CompiledPlanIsReusableAcrossExecutions) {
  const GeneratedDataset& ds = Dataset("airca");
  const IndexSet& indices = Indices("airca");
  Result<BoundedPlan> plan = MakePlan(ds, 3);
  ASSERT_TRUE(plan.ok());
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(*plan, indices);
  ASSERT_TRUE(pp.ok());
  Result<Table> first = ExecutePhysicalPlan(*pp, nullptr, {});
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    Result<Table> again = ExecutePhysicalPlan(*pp, nullptr, {});
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(Table::SameSet(*first, *again));
    EXPECT_EQ(first->NumRows(), again->NumRows());
  }
}

std::vector<DiffCase> AllCases() {
  std::vector<DiffCase> cases;
  for (const char* ds : {"airca", "tfacc", "mcbm"}) {
    for (uint64_t seed = 0; seed < 16; ++seed) {
      cases.push_back(DiffCase{ds, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Datasets, ParallelExecTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------- task-group scheduling ---
// The serving layer dispatches concurrent queries as concurrent tagged task
// groups; these tests pin the WorkerPool refactor that makes that possible.

TEST(WorkerPoolTaskGroupTest, ConcurrentGroupsBothMakeProgress) {
  // Group A's items block until group B has executed an item. Under the
  // pre-refactor pool (one job at a time, callers serialized) this
  // deadlocks: B could never start while A was in flight. With task groups
  // B's caller thread always works B's own items, so A unblocks.
  WorkerPool& pool = WorkerPool::Shared();
  const uint64_t groups0 = pool.stats().groups;
  std::atomic<bool> b_ran{false};
  std::atomic<bool> gave_up{false};
  std::thread b_caller([&] {
    // Let A register first so the old behavior would actually serialize.
    while (pool.stats().groups == groups0) std::this_thread::yield();
    pool.ParallelFor(4, WorkerPool::GroupOptions{2, /*tag=*/7},
                     [&](size_t, size_t) { b_ran.store(true); });
  });
  pool.ParallelFor(8, WorkerPool::GroupOptions{2, /*tag=*/3},
                   [&](size_t, size_t) {
                     auto deadline = std::chrono::steady_clock::now() +
                                     std::chrono::seconds(30);
                     while (!b_ran.load()) {
                       if (std::chrono::steady_clock::now() > deadline) {
                         gave_up.store(true);
                         return;
                       }
                       std::this_thread::yield();
                     }
                   });
  b_caller.join();
  EXPECT_TRUE(b_ran.load());
  EXPECT_FALSE(gave_up.load()) << "concurrent task group never progressed";
  EXPECT_GE(pool.stats().max_concurrent_groups, 2u);
}

TEST(WorkerPoolTaskGroupTest, WorkerIdsAreDensePerGroup) {
  WorkerPool& pool = WorkerPool::Shared();
  constexpr size_t kWorkers = 4;
  constexpr size_t kItems = 64;
  std::atomic<int> bad_ids{0};
  std::atomic<uint64_t> covered{0};
  pool.ParallelFor(kItems, kWorkers, [&](size_t w, size_t item) {
    if (w >= kWorkers) bad_ids.fetch_add(1);
    covered.fetch_add(item + 1);  // Sum 1..kItems checks each item ran once.
  });
  EXPECT_EQ(bad_ids.load(), 0);
  EXPECT_EQ(covered.load(), kItems * (kItems + 1) / 2);
}

TEST(WorkerPoolTaskGroupTest, ExceptionCurtailsGroupAndRethrows) {
  WorkerPool& pool = WorkerPool::Shared();
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(256, 4,
                       [&](size_t, size_t item) {
                         if (item == 5) throw std::runtime_error("boom");
                         ran.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 256u);  // Remaining items were curtailed.
  // The pool stays serviceable for later groups.
  std::atomic<size_t> after{0};
  pool.ParallelFor(16, 4, [&](size_t, size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16u);
}

TEST(WorkerPoolTaskGroupTest, ManyConcurrentCallersDrainCorrectly) {
  WorkerPool& pool = WorkerPool::Shared();
  constexpr int kCallers = 6;
  constexpr size_t kItems = 200;
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kItems,
                       WorkerPool::GroupOptions{3, static_cast<uint64_t>(c)},
                       [&](size_t, size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), static_cast<uint64_t>(kCallers) * kItems);
}

}  // namespace
}  // namespace bqe
