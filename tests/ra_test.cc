#include <gtest/gtest.h>

#include "ra/builder.h"
#include "ra/normalize.h"
#include "ra/printer.h"
#include "ra/spc.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ0Prime;
using testutil::MakeQ1;
using testutil::MakeQ2;

// ------------------------------------------------------------------ Expr ---

TEST(RaExprTest, BuildersSetFields) {
  RaExprPtr r = RelAs("dine", "d");
  EXPECT_EQ(r->op(), RaOp::kRel);
  EXPECT_EQ(r->base(), "dine");
  EXPECT_EQ(r->occurrence(), "d");
  RaExprPtr plain = Rel("cafe");
  EXPECT_EQ(plain->occurrence(), "cafe");
}

TEST(RaExprTest, PredicateToString) {
  EXPECT_EQ(EqC(A("r", "a"), Value::Int(5)).ToString(), "r.a = 5");
  EXPECT_EQ(EqA(A("r", "a"), A("s", "b")).ToString(), "r.a = s.b");
  EXPECT_EQ(Predicate::CmpConst(CmpOp::kLt, A("r", "a"), Value::Int(3)).ToString(),
            "r.a < 3");
}

TEST(RaExprTest, EvalCmpAllOps) {
  Value a = Value::Int(1), b = Value::Int(2);
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, b, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, b, b));
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, a, b));
}

TEST(RaExprTest, TreeSizeCountsNodes) {
  RaExprPtr q = MakeQ1();
  EXPECT_GT(q->TreeSize(), 5u);
}

TEST(RaExprTest, JoinSugarDesugars) {
  RaExprPtr j = Join(Rel("friend"), Rel("dine"),
                     {{A("friend", "fid"), A("dine", "pid")}});
  EXPECT_EQ(j->op(), RaOp::kSelect);
  EXPECT_EQ(j->left()->op(), RaOp::kProduct);
  ASSERT_EQ(j->preds().size(), 1u);
  EXPECT_EQ(j->preds()[0].op, CmpOp::kEq);
}

TEST(RaExprTest, CloneWithSuffixRenamesEverything) {
  RaExprPtr q = MakeQ1();
  RaExprPtr c = CloneWithSuffix(q, "#x");
  // Collect occurrence names from the clone.
  ASSERT_EQ(c->op(), RaOp::kProject);
  EXPECT_EQ(c->cols()[0].rel, "cafe#x");
  const RaExpr* sel = c->left().get();
  ASSERT_EQ(sel->op(), RaOp::kSelect);
  for (const Predicate& p : sel->preds()) {
    EXPECT_NE(p.lhs.rel.find("#x"), std::string::npos) << p.ToString();
  }
}

// ------------------------------------------------------------- Normalize ---

TEST(NormalizeTest, AcceptsWellFormedQuery) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx.db.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  EXPECT_EQ(nq->occurrences().size(), 3u);
  EXPECT_EQ(*nq->BaseOf("friend"), "friend");
}

TEST(NormalizeTest, OutputAttrsOfRoot) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  const std::vector<AttrRef>& out = nq->OutputOf(nq->root().get());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "cafe.cid");
}

TEST(NormalizeTest, RejectsUnknownRelation) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(Rel("nope"), fx.db.catalog());
  EXPECT_EQ(nq.status().code(), StatusCode::kNotFound);
}

TEST(NormalizeTest, RejectsDuplicateOccurrences) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Product(Rel("dine"), Rel("dine"));
  Result<NormalizedQuery> nq = Normalize(q, fx.db.catalog());
  EXPECT_EQ(nq.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, AcceptsRenamedDuplicates) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Product(Rel("dine"), RelAs("dine", "dine2"));
  EXPECT_TRUE(Normalize(q, fx.db.catalog()).ok());
}

TEST(NormalizeTest, RejectsOutOfScopePredicate) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Select(Rel("friend"), {EqC(A("cafe", "cid"), Value::Str("x"))});
  EXPECT_EQ(Normalize(q, fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, RejectsTypeMismatchAttrConst) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Select(Rel("dine"), {EqC(A("dine", "month"), Value::Str("may"))});
  EXPECT_EQ(Normalize(q, fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, RejectsTypeMismatchAttrAttr) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q =
      Select(Rel("dine"), {EqA(A("dine", "pid"), A("dine", "month"))});
  EXPECT_EQ(Normalize(q, fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, RejectsEmptyProjection) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Project(Rel("dine"), {});
  EXPECT_EQ(Normalize(q, fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, RejectsArityMismatchInUnion) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr one = Project(Rel("dine"), {A("dine", "cid")});
  RaExprPtr two = Project(RelAs("dine", "d2"),
                          {A("d2", "cid"), A("d2", "pid")});
  EXPECT_EQ(Normalize(Union(one, two), fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, RejectsTypeMismatchInDiff) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr strs = Project(Rel("dine"), {A("dine", "cid")});
  RaExprPtr ints = Project(RelAs("dine", "d2"), {A("d2", "month")});
  EXPECT_EQ(Normalize(Diff(strs, ints), fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, TypeOfResolvesThroughOccurrence) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr q = Project(RelAs("dine", "d"), {A("d", "month")});
  Result<NormalizedQuery> nq = Normalize(q, fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  EXPECT_EQ(*nq->TypeOf(A("d", "month")), ValueType::kInt);
  EXPECT_EQ(*nq->TypeOf(A("d", "pid")), ValueType::kString);
  EXPECT_FALSE(nq->TypeOf(A("zzz", "pid")).ok());
}

TEST(NormalizeTest, NullQueryRejected) {
  auto fx = MakeGraphSearch(false);
  EXPECT_EQ(Normalize(nullptr, fx.db.catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- SPC ---

TEST(SpcTest, WholeSpcQueryIsOneMaxSubquery) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  ASSERT_EQ(spcs.size(), 1u);
  EXPECT_EQ(spcs[0].relations.size(), 3u);
  EXPECT_EQ(spcs[0].conjuncts.size(), 6u);
  ASSERT_EQ(spcs[0].output.size(), 1u);
}

TEST(SpcTest, DiffSplitsIntoTwoMaxSubqueries) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ0(), fx.db.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  ASSERT_EQ(spcs.size(), 2u);
  EXPECT_EQ(spcs[0].relations.size(), 3u);  // Q1's three relations.
  EXPECT_EQ(spcs[1].relations.size(), 1u);  // Q2's dine2.
}

TEST(SpcTest, XqIncludesConditionAndOutputAttrs) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ2(), fx.db.catalog());
  ASSERT_TRUE(nq.ok());
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  ASSERT_EQ(spcs.size(), 1u);
  // X_Q2 = {pid, cid} per Example 4.
  EXPECT_EQ(spcs[0].xq.size(), 2u);
}

TEST(SpcTest, EveryRelationInExactlyOneMaxSubquery) {
  auto fx = MakeGraphSearch(false);
  Result<NormalizedQuery> nq = Normalize(MakeQ0Prime(), fx.db.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  std::set<std::string> seen;
  size_t total = 0;
  for (const SpcQuery& s : spcs) {
    for (const std::string& r : s.relations) {
      EXPECT_TRUE(seen.insert(r).second) << r << " appears twice";
      ++total;
    }
  }
  EXPECT_EQ(total, nq->occurrences().size());
}

TEST(SpcTest, SelectAboveUnionIsNotSpc) {
  auto fx = MakeGraphSearch(false);
  RaExprPtr u = Union(Project(Rel("dine"), {A("dine", "cid")}),
                      Project(RelAs("dine", "d2"), {A("d2", "cid")}));
  RaExprPtr q = Select(u, {EqC(A("dine", "cid"), Value::Str("c1"))});
  Result<NormalizedQuery> nq = Normalize(q, fx.db.catalog());
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  std::vector<SpcQuery> spcs = FindMaxSpcSubqueries(*nq);
  EXPECT_EQ(spcs.size(), 2u);  // The two union branches.
  EXPECT_FALSE(IsSpcSubtree(q.get()));
  EXPECT_TRUE(IsSpcNode(q.get()));  // Select alone is an SPC operator.
}

// --------------------------------------------------------------- Printer ---

TEST(PrinterTest, AlgebraStringMentionsOperators) {
  std::string s = ToAlgebraString(MakeQ1());
  EXPECT_NE(s.find("pi["), std::string::npos);
  EXPECT_NE(s.find("sigma["), std::string::npos);
  EXPECT_NE(s.find(" x "), std::string::npos);
}

TEST(PrinterTest, SqlStringForSpcBlock) {
  std::string s = ToSqlString(MakeQ1());
  EXPECT_NE(s.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(s.find("FROM friend, dine, cafe"), std::string::npos);
  EXPECT_NE(s.find("WHERE"), std::string::npos);
}

TEST(PrinterTest, SqlStringForDiff) {
  std::string s = ToSqlString(MakeQ0());
  EXPECT_NE(s.find("EXCEPT"), std::string::npos);
}

TEST(PrinterTest, AliasedRelationRendered) {
  std::string s = ToSqlString(Project(RelAs("dine", "d"), {A("d", "cid")}));
  EXPECT_NE(s.find("dine AS d"), std::string::npos);
}

}  // namespace
}  // namespace bqe
