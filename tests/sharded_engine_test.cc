#include "cluster/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/shard_router.h"
#include "core/engine.h"
#include "core/plan_exec.h"
#include "ra/builder.h"
#include "serve/query_service.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Differential testing of the hash-partitioned multi-engine path: for the
/// same query, scatter/gather execution across N BoundedEngine shards must
/// return a row stream *byte-identical* to the single-engine row path —
/// same rows, same order, same types — for every operator kind, including
/// the cross-shard set ops (difference, dedupe-union) that finish
/// centrally. 48 differential cases (8 queries x shards {1,2,4} x pre/post
/// churn) pin that, plus slot-routing units, serving-mode differentials,
/// the lazy maintenance-rebuild satellite, and thread stress for the CI
/// TSan lane.

using cluster::ShardedEngine;
using cluster::ShardedOptions;
using cluster::ShardRouter;
using cluster::ShardStatsSnapshot;
using serve::DeltaResponse;
using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsCafesMonthQuery;
using workload::FriendsMayNotJuneCafesQuery;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::GraphChurnJuneBatch;
using workload::GraphChurnMixedBatch;
using workload::MakeGraphChurnFixture;

/// A huge threshold keeps every execution on the row-at-a-time
/// interpreter, whose output order is fully deterministic — the oracle the
/// scatter/gather path promises to match byte for byte.
EngineOptions RowPathOptions() {
  EngineOptions opts;
  opts.exec_threads = 1;
  opts.row_path_threshold = ~size_t{0};
  return opts;
}

ShardedOptions MakeShardedOptions(size_t shards) {
  ShardedOptions opts;
  opts.shards = shards;
  opts.slots = 64;
  opts.engine = RowPathOptions();
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
  EXPECT_EQ(got.ColumnTypes(), want.ColumnTypes()) << context;
}

/// The operator-coverage corpus: plain fetch/join/project chains, the
/// month-parameterized variant (distinct fetch key ranges), covered
/// *difference* (cross-shard subtrahend), and dedupe-*union* of two
/// occurrence-renamed subqueries. Every plan-step kind the row path can
/// emit appears: kConst, kFetch, kFilter, kJoin, dedupe kProject, kUnion,
/// kDiff (kProduct/kEmpty are covered by the hand-plan test below).
std::vector<std::pair<std::string, RaExprPtr>> Corpus(
    const GraphChurnConfig& cfg) {
  std::vector<std::pair<std::string, RaExprPtr>> corpus;
  corpus.emplace_back("nyc_p0", FriendsNycCafesQuery(cfg.Pid(0)));
  corpus.emplace_back("nyc_p7", FriendsNycCafesQuery(cfg.Pid(7)));
  corpus.emplace_back("may_p1", FriendsCafesMonthQuery(cfg.Pid(1), 5));
  corpus.emplace_back("june_p2", FriendsCafesMonthQuery(cfg.Pid(2), 6));
  corpus.emplace_back("diff_p3", FriendsMayNotJuneCafesQuery(cfg.Pid(3)));
  corpus.emplace_back("diff_p0", FriendsMayNotJuneCafesQuery(cfg.Pid(0)));
  corpus.emplace_back(
      "union_p4", Union(FriendsCafesMonthQuery(cfg.Pid(4), 5),
                        FriendsCafesMonthQuery(cfg.Pid(4), 6, "J")));
  corpus.emplace_back(
      "union_p5_p6", Union(FriendsCafesMonthQuery(cfg.Pid(5), 5),
                           FriendsCafesMonthQuery(cfg.Pid(6), 5, "J")));
  return corpus;
}

TEST(ShardRouterTest, BuildValidatesParameters) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  EXPECT_FALSE(
      ShardRouter::Build(fx.schema, fx.db.catalog(), 256, 0).ok());
  EXPECT_FALSE(  // Slots must be a power of two.
      ShardRouter::Build(fx.schema, fx.db.catalog(), 100, 2).ok());
  EXPECT_FALSE(  // Slots must be >= shards.
      ShardRouter::Build(fx.schema, fx.db.catalog(), 2, 4).ok());
  EXPECT_TRUE(ShardRouter::Build(fx.schema, fx.db.catalog(), 1, 1).ok());
  EXPECT_TRUE(ShardRouter::Build(fx.schema, fx.db.catalog(), 256, 3).ok());
}

TEST(ShardRouterTest, RoutingIsDeterministicAndSpreads) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<ShardRouter> r =
      ShardRouter::Build(fx.schema, fx.db.catalog(), 64, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<size_t> hits(4, 0);
  for (int i = 0; i < 200; ++i) {
    Tuple key = {Value::Str("p" + std::to_string(i))};
    size_t slot = r->SlotOfKey(key);
    ASSERT_LT(slot, 64u);
    EXPECT_EQ(r->SlotOfKey(key), slot);  // Stable.
    EXPECT_EQ(r->ShardOfKey(key), r->ShardOfSlot(slot));
    ASSERT_LT(r->ShardOfKey(key), 4u);
    ++hits[r->ShardOfKey(key)];
  }
  // The high-bit hash must actually spread: no shard owns everything.
  for (size_t s = 0; s < 4; ++s) EXPECT_GT(hits[s], 0u) << "shard " << s;

  // A single slot degenerates to shard 0 for every key.
  Result<ShardRouter> one =
      ShardRouter::Build(fx.schema, fx.db.catalog(), 1, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->ShardOfKey({Value::Str("anything")}), 0u);
}

TEST(ShardRouterTest, ShardsOfRowFollowsConstraints) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<ShardRouter> r =
      ShardRouter::Build(fx.schema, fx.db.catalog(), 64, 4);
  ASSERT_TRUE(r.ok());

  // friend has one constraint ((pid) -> (fid)): exactly one owner, and it
  // is the owner of the pid fetch key.
  Tuple frow = {Value::Str("p3"), Value::Str("f77")};
  std::vector<size_t> owners = r->ShardsOfRow("friend", frow);
  ASSERT_EQ(owners.size(), 1u);
  ASSERT_EQ(r->ConstraintsFor("friend").size(), 1u);
  int fc = r->ConstraintsFor("friend")[0];
  EXPECT_EQ(r->FetchKeyFor(fc, frow), Tuple({Value::Str("p3")}));
  EXPECT_EQ(owners[0], r->ShardOfKey({Value::Str("p3")}));

  // dine has two constraints: up to two distinct owners, ascending.
  Tuple drow = {Value::Str("f1"), Value::Str("c2"), Value::Int(5),
                Value::Int(2015)};
  std::vector<size_t> downers = r->ShardsOfRow("dine", drow);
  ASSERT_GE(downers.size(), 1u);
  ASSERT_LE(downers.size(), 2u);
  EXPECT_TRUE(std::is_sorted(downers.begin(), downers.end()));
  EXPECT_TRUE(std::adjacent_find(downers.begin(), downers.end()) ==
              downers.end());

  // A relation with no access constraint routes nowhere.
  EXPECT_TRUE(r->ShardsOfRow("unconstrained", frow).empty());
}

TEST(ShardRouterTest, SplitDeltasReplicatesToEveryOwner) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<ShardRouter> r =
      ShardRouter::Build(fx.schema, fx.db.catalog(), 64, 4);
  ASSERT_TRUE(r.ok());

  std::vector<Delta> batch;
  for (int b = 0; b < 8; ++b) {
    for (Delta& d : GraphChurnMixedBatch(fx.cfg, "split", b)) {
      batch.push_back(std::move(d));
    }
  }
  std::vector<std::vector<Delta>> split = r->SplitDeltas(batch);
  ASSERT_EQ(split.size(), 4u);

  // Every delta lands on exactly its owning shards, batch order preserved
  // within each sub-batch.
  size_t expected = 0;
  for (const Delta& d : batch) expected += r->ShardsOfRow(d.rel, d.row).size();
  size_t routed = 0;
  for (size_t s = 0; s < split.size(); ++s) {
    routed += split[s].size();
    size_t pos = 0;
    for (const Delta& d : split[s]) {
      std::vector<size_t> owners = r->ShardsOfRow(d.rel, d.row);
      EXPECT_TRUE(std::find(owners.begin(), owners.end(), s) != owners.end());
      // Order check: this delta appears in `batch` at or after the
      // previous sub-batch element's position.
      while (pos < batch.size() &&
             !(batch[pos].rel == d.rel && batch[pos].row == d.row &&
               batch[pos].kind == d.kind)) {
        ++pos;
      }
      ASSERT_LT(pos, batch.size()) << "sub-batch delta not found in order";
    }
  }
  EXPECT_EQ(routed, expected);
}

/// The tentpole differential: 8 queries x shards {1,2,4} x {pre, post}
/// churn = 48 cases, each compared row-for-row (and type-for-type) against
/// a single-engine row-path execution of the same query on identical data.
TEST(ShardedEngineDifferentialTest, ByteIdenticalToSingleEngine48Cases) {
  size_t cases = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    GraphChurnFixture fx = MakeGraphChurnFixture();
    BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
    ASSERT_TRUE(oracle.BuildIndices().ok());
    // Create() copies the database per shard, so the oracle's in-place
    // Apply below never leaks into the shards (both sides apply the same
    // batches through their own path).
    Result<std::unique_ptr<ShardedEngine>> sharded =
        ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(shards));
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_EQ((*sharded)->num_shards(), shards);

    std::vector<std::pair<std::string, RaExprPtr>> corpus = Corpus(fx.cfg);
    auto run_phase = [&](const std::string& phase) {
      for (const auto& [name, q] : corpus) {
        std::string ctx =
            "shards=" + std::to_string(shards) + " " + phase + " " + name;
        Result<ExecuteResult> want = oracle.Execute(q);
        ASSERT_TRUE(want.ok()) << ctx << ": " << want.status().ToString();
        ASSERT_TRUE(want->used_bounded_plan) << ctx;
        Result<ExecuteResult> got = (*sharded)->Execute(q);
        ASSERT_TRUE(got.ok()) << ctx << ": " << got.status().ToString();
        EXPECT_TRUE(got->used_bounded_plan) << ctx;
        ExpectRowForRowEqual(got->table, want->table, ctx);
        ++cases;
      }
    };

    run_phase("pre");
    // Mixed insert+delete churn through friend/dine, plus june churn so
    // the difference subtrahend and the union's second branch both move.
    for (int b = 0; b < 12; ++b) {
      std::vector<Delta> batch = GraphChurnMixedBatch(fx.cfg, "sharddiff", b);
      ASSERT_TRUE(oracle.Apply(batch).ok()) << "batch " << b;
      Result<MaintenanceStats> st = (*sharded)->Apply(batch);
      ASSERT_TRUE(st.ok()) << "batch " << b << ": " << st.status().ToString();
    }
    for (int b = 0; b < 6; ++b) {
      std::vector<Delta> batch = GraphChurnJuneBatch(fx.cfg, b);
      ASSERT_TRUE(oracle.Apply(batch).ok()) << "june batch " << b;
      ASSERT_TRUE((*sharded)->Apply(batch).ok()) << "june batch " << b;
    }
    run_phase("post");
  }
  EXPECT_EQ(cases, 48u);
}

/// The public scatter/gather core against the exported row-path
/// interpreter, plan for plan — pins that the central interpreter
/// replicates ExecutePlanRowAtATime exactly (including stats shape), with
/// a shard count that does not divide the slot count evenly.
TEST(ShardedEngineDifferentialTest, ScatteredPlanMatchesRowPathInterpreter) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(3));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  for (const auto& [name, q] : Corpus(fx.cfg)) {
    Result<std::shared_ptr<const PreparedQuery>> pq =
        (*sharded)->PrepareCompiled(q);
    ASSERT_TRUE(pq.ok()) << name << ": " << pq.status().ToString();
    ASSERT_TRUE((*pq)->info.covered) << name;
    const BoundedPlan& plan = (*pq)->physical->source_plan();

    Result<Table> want = ExecutePlanRowAtATime(plan, oracle.indices());
    ASSERT_TRUE(want.ok()) << name;
    ExecStats st;
    Result<Table> got = (*sharded)->ExecutePlanScattered(plan, 0, 2, &st);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    ExpectRowForRowEqual(*got, *want, name);
    EXPECT_EQ(st.output_rows, got->NumRows()) << name;
  }
  // At least one query's fetches engaged more than one shard.
  uint64_t scatter = 0;
  for (size_t s = 0; s < 3; ++s) {
    scatter += (*sharded)->shard_stats(s).scatter_tasks;
  }
  EXPECT_GT(scatter, 0u);
}

TEST(ShardedEngineTest, NonCoveredQueryUsesReplicaOrRefuses) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine single(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(single.BuildIndices().ok());
  // cafe's only constraint is (cid) -> (city): filtering by city without a
  // cid binding is not covered.
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "city"), Value::Str("nyc"))}),
      {A("cafe", "cid")});

  Result<std::unique_ptr<ShardedEngine>> with_replica =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(2));
  ASSERT_TRUE(with_replica.ok());
  Result<ExecuteResult> got = (*with_replica)->Execute(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got->used_bounded_plan);
  Result<ExecuteResult> want = single.Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_FALSE(want->used_bounded_plan);
  EXPECT_TRUE(Table::SameSet(got->table, want->table));

  ShardedOptions no_replica = MakeShardedOptions(2);
  no_replica.fallback_replica = false;
  Result<std::unique_ptr<ShardedEngine>> bare =
      ShardedEngine::Create(fx.db, fx.schema, no_replica);
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE((*bare)->Execute(q).ok());
}

TEST(ShardedEngineTest, ApplySplitsByOwnerAndCoherenceSums) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(4));
  ASSERT_TRUE(sharded.ok());

  // A prepared covered plan must survive data-only churn (the per-shard
  // zero-re-prepare guarantee, fingerprint-routed).
  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::string fp = BoundedEngine::QueryFingerprint(q);
  Result<std::shared_ptr<const PreparedQuery>> pq =
      (*sharded)->PrepareCompiled(q);
  ASSERT_TRUE(pq.ok());

  CoherenceSnapshot pre = (*sharded)->Coherence();
  std::vector<Delta> batch = GraphChurnBatch(fx.cfg, "apply", 0);
  Result<MaintenanceStats> st = (*sharded)->Apply(batch);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(st->inserts, 2u);  // Logical stats, not per-shard copies.
  CoherenceSnapshot post = (*sharded)->Coherence();
  EXPECT_GT(post.data_epoch, pre.data_epoch);
  EXPECT_EQ(post.schema_epoch, pre.schema_epoch);  // No bound grew.
  EXPECT_EQ((*sharded)->last_applied().deltas.size(), 2u);

  // The friend insert owns 1 shard, the dine insert up to 2 — the routed
  // total must match the router's own split, and every counter must agree.
  const ShardRouter& router = (*sharded)->router();
  size_t expected_routed = 0;
  for (const Delta& d : batch) {
    expected_routed += router.ShardsOfRow(d.rel, d.row).size();
  }
  uint64_t routed = 0;
  for (size_t s = 0; s < 4; ++s) {
    routed += (*sharded)->shard_stats(s).deltas_routed;
  }
  EXPECT_EQ(routed, expected_routed);

  EXPECT_TRUE((*sharded)->StillCoherent(fp, **pq));
  bool hit = false;
  Result<std::shared_ptr<const PreparedQuery>> again =
      (*sharded)->PrepareCompiled(q, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);  // Same planning shard, cached plan intact.
}

/// Serving-mode differential: the sharded QueryService answers exactly
/// like a direct single row-path engine across query/delta interleavings,
/// while the per-shard stats section and the five-way request accounting
/// stay exact.
TEST(ShardedServiceTest, AnswersMatchSingleEngineAcrossChurn) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(2));
  ASSERT_TRUE(sharded.ok());
  QueryService service(sharded->get());
  ASSERT_EQ(service.sharded(), sharded->get());

  size_t requests = 0;
  auto check_queries = [&](const std::string& phase) {
    for (int i = 0; i < 6; ++i) {
      RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i));
      QueryResponse resp = service.Query(q);
      ++requests;
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_NE(resp.table, nullptr);
      Result<ExecuteResult> want = oracle.Execute(q);
      ASSERT_TRUE(want.ok());
      ExpectRowForRowEqual(*resp.table, want->table,
                           phase + " query " + std::to_string(i));
    }
  };

  check_queries("pre");
  for (int b = 0; b < 8; ++b) {
    std::vector<Delta> batch = GraphChurnMixedBatch(fx.cfg, "svc", b);
    ASSERT_TRUE(oracle.Apply(batch).ok());
    DeltaResponse dr = service.ApplyDeltas(batch);
    ASSERT_TRUE(dr.status.ok()) << "batch " << b;
    check_queries("after batch " + std::to_string(b));
  }

  ServiceStats s = service.stats();
  // Per-shard section: one entry per shard, folded consistently.
  ASSERT_EQ(s.engine_shards.size(), 2u);
  uint64_t scatter = 0, max_routed = 0, min_routed = ~uint64_t{0};
  for (const ServiceStats::ShardSection& sec : s.engine_shards) {
    scatter += sec.scatter_tasks;
    max_routed = std::max(max_routed, sec.deltas_routed);
    min_routed = std::min(min_routed, sec.deltas_routed);
  }
  EXPECT_EQ(s.scatter_tasks, scatter);
  EXPECT_EQ(s.shard_skew_max, max_routed);
  EXPECT_EQ(s.shard_skew_min, min_routed);
  EXPECT_GE(s.shard_skew_max, s.shard_skew_min);
  EXPECT_EQ(s.delta_batches, 8u);
  // Merged epochs: every applied batch moved the summed snapshot.
  EXPECT_GT(s.data_epoch, 0u);
  // Five-way accounting: every query request is answered exactly once.
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window + s.result_hits_refreshed,
            requests);
}

/// Satellite 1: after an IVM refresh fallback, the fingerprint's next
/// execution skips the handle rebuild (counted in maint_lazy_rebuilds) and
/// the one after rebuilds normally — in both single-engine and sharded
/// mode (where maintenance probes route through RoutedFetch).
void RunLazyRebuildScenario(QueryService& service, BoundedEngine& oracle,
                            const GraphChurnConfig& cfg) {
  RaExprPtr q = FriendsMayNotJuneCafesQuery(cfg.Pid(0));

  // ASSERT macros only work in void-returning scopes, so the lambda hands
  // its response back through `last` instead of a return value.
  QueryResponse last;
  auto query_and_check = [&](const std::string& ctx) {
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok()) << ctx << ": " << resp.status.ToString();
    ASSERT_NE(resp.table, nullptr) << ctx;
    Result<ExecuteResult> want = oracle.Execute(q);
    ASSERT_TRUE(want.ok()) << ctx;
    // IVM-refreshed tables keep surviving rows in place, so compare as an
    // exact sorted bag rather than row-for-row.
    std::vector<Tuple> g = resp.table->rows(), w = want->table.rows();
    std::sort(g.begin(), g.end());
    std::sort(w.begin(), w.end());
    ASSERT_EQ(g, w) << ctx;
    last = std::move(resp);
  };
  auto apply_both = [&](std::vector<Delta> batch, const std::string& ctx) {
    ASSERT_TRUE(oracle.Apply(batch).ok()) << ctx;
    DeltaResponse dr = service.ApplyDeltas(std::move(batch));
    ASSERT_TRUE(dr.status.ok()) << ctx << ": " << dr.status.ToString();
  };

  query_and_check("first execution (no handle: no demonstrated reuse)");
  apply_both(GraphChurnJuneBatch(cfg, 0), "june 0");  // Insert-only.
  query_and_check("second execution (pin hit: handle built)");
  // Insert-only june churn: maintainable, entries patched in place.
  for (int b = 1; b <= 3; ++b) {
    apply_both(GraphChurnJuneBatch(cfg, b), "june " + std::to_string(b));
  }
  query_and_check("after maintainable batches");
  EXPECT_TRUE(last.result_cache_hit)
      << "maintainable churn must keep the entry serving from cache";
  EXPECT_TRUE(last.result_refreshed);

  // Batch 4 deletes batch 0's june row: a subtrahend deletion, the one
  // delta shape the difference plan refuses to maintain. The entry falls
  // back and its rebuild is deferred.
  apply_both(GraphChurnJuneBatch(cfg, 4), "june 4 (subtrahend delete)");
  query_and_check("post-fallback execution (rebuild skipped)");
  ServiceStats mid = service.stats();
  EXPECT_EQ(mid.maint_lazy_rebuilds, 1u);
  EXPECT_GE(mid.result_cache.refresh_fallbacks, 1u);

  // Next cycle: the entry (cached handle-less) is swept by the batch, and
  // the following execution rebuilds normally — proven by the entry
  // surviving the batch after *that* via a refresh.
  apply_both(GraphChurnJuneBatch(cfg, 10, /*lag=*/20), "june 10");
  query_and_check("rebuild execution");
  apply_both(GraphChurnJuneBatch(cfg, 11, /*lag=*/20), "june 11");
  query_and_check("after rebuilt handle refresh");
  EXPECT_TRUE(last.result_cache_hit);
  EXPECT_TRUE(last.result_refreshed);
  ServiceStats end = service.stats();
  EXPECT_EQ(end.maint_lazy_rebuilds, 1u) << "exactly one deferred rebuild";
  EXPECT_GT(end.result_cache.refreshes, 0u);
}

TEST(ShardedServiceTest, LazyRebuildAfterIvmFallbackSingleEngine) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  GraphChurnFixture fx_oracle = MakeGraphChurnFixture();  // Identical twin.
  BoundedEngine engine(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  BoundedEngine oracle(&fx_oracle.db, fx_oracle.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  QueryService service(&engine);
  RunLazyRebuildScenario(service, oracle, fx.cfg);
}

TEST(ShardedServiceTest, LazyRebuildAfterIvmFallbackSharded) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(2));
  ASSERT_TRUE(sharded.ok());
  QueryService service(sharded->get());
  RunLazyRebuildScenario(service, oracle, fx.cfg);
}

/// Thread stress for the TSan CI lane: concurrent scatter/gather readers
/// against per-shard delta writers on the bare engine (per-fetch
/// atomicity: answers mid-churn need only be well-formed), then full
/// convergence against a single-engine oracle at quiescence.
TEST(ShardedEngineStressTest, ConcurrentReadersAndWritersConverge) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(2));
  ASSERT_TRUE(sharded.ok());

  constexpr int kBatches = 16;
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 24;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int b = 0; b < kBatches; ++b) {
      if (!(*sharded)->Apply(GraphChurnMixedBatch(fx.cfg, "stress", b)).ok()) {
        failed.store(true, std::memory_order_relaxed);
      }
    }
  });
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid((t * 7 + i) % 6));
        Result<ExecuteResult> r = (*sharded)->Execute(q);
        if (!r.ok()) failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_FALSE(failed.load(std::memory_order_relaxed));

  // Quiescent convergence: the oracle applies the same batches in the
  // writer's order; every answer must again be byte-identical.
  BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(oracle.Apply(GraphChurnMixedBatch(fx.cfg, "stress", b)).ok());
  }
  for (int i = 0; i < 6; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i));
    Result<ExecuteResult> got = (*sharded)->Execute(q);
    Result<ExecuteResult> want = oracle.Execute(q);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectRowForRowEqual(got->table, want->table,
                         "converged query " + std::to_string(i));
  }
}

/// Same storm through the sharded serving layer, where the global gate
/// restores whole-query snapshot isolation: every concurrent answer (not
/// just the quiescent ones) must be internally consistent, and the
/// five-way accounting must balance at the end.
TEST(ShardedServiceStressTest, ConcurrentServingStaysCoherent) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::Create(fx.db, fx.schema, MakeShardedOptions(2));
  ASSERT_TRUE(sharded.ok());
  QueryService service(sharded->get());

  constexpr int kBatches = 12;
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 20;
  std::atomic<bool> failed{false};
  std::atomic<size_t> requests{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int b = 0; b < kBatches; ++b) {
      DeltaResponse dr =
          service.ApplyDeltas(GraphChurnMixedBatch(fx.cfg, "svcstress", b));
      if (!dr.status.ok()) failed.store(true, std::memory_order_relaxed);
    }
  });
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid((t * 5 + i) % 6));
        QueryResponse resp = service.Query(q);
        requests.fetch_add(1, std::memory_order_relaxed);
        if (!resp.status.ok() || resp.table == nullptr) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_FALSE(failed.load(std::memory_order_relaxed));

  ServiceStats s = service.stats();
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window + s.result_hits_refreshed,
            requests.load(std::memory_order_relaxed));
  EXPECT_EQ(s.delta_batches, static_cast<uint64_t>(kBatches));
  ASSERT_EQ(s.engine_shards.size(), 2u);

  // Quiescent convergence against a fresh oracle.
  BoundedEngine oracle(&fx.db, fx.schema, RowPathOptions());
  ASSERT_TRUE(oracle.BuildIndices().ok());
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(
        oracle.Apply(GraphChurnMixedBatch(fx.cfg, "svcstress", b)).ok());
  }
  for (int i = 0; i < 6; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i));
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok());
    Result<ExecuteResult> want = oracle.Execute(q);
    ASSERT_TRUE(want.ok());
    ExpectRowForRowEqual(*resp.table, want->table,
                         "converged query " + std::to_string(i));
  }
}

}  // namespace
}  // namespace bqe
