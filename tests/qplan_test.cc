#include <gtest/gtest.h>

#include "baseline/eval.h"
#include "constraints/index.h"
#include "core/cov.h"
#include "core/plan_exec.h"
#include "core/qplan.h"
#include "ra/builder.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0Prime;
using testutil::MakeQ1;
using testutil::MakeQ3;

class QPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = MakeGraphSearch();
    Result<IndexSet> set = IndexSet::Build(fx_.db, fx_.schema);
    ASSERT_TRUE(set.ok());
    indices_ = std::move(*set);
  }

  BoundedPlan Plan(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    Result<CoverageReport> report = CheckCoverage(*nq, fx_.schema);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report->covered) << report->Explain();
    Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : BoundedPlan();
  }

  Table Run(const BoundedPlan& plan, ExecStats* stats = nullptr) {
    Result<Table> t = ExecutePlan(plan, indices_, stats);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(*t) : Table();
  }

  Table Oracle(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok());
    Result<Table> t = EvaluateBaseline(*nq, fx_.db, nullptr);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(*t) : Table();
  }

  testutil::GraphSearchFixture fx_;
  IndexSet indices_;
};

// ------------------------------------------------------- Hypergraph build ---

TEST_F(QPlanTest, HypergraphShapeForQ1) {
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx_.schema);
  ASSERT_TRUE(report.ok());
  const SpcCoverage& sc = report->spcs[0];
  QaHypergraph hg = BuildQaHypergraph(sc, report->actualized);
  // r + one node per class + one set node per non-trivial FD.
  // Q1 classes: pid, fid(=dine.pid), cid(=cafe.cid), month, year, city = 6.
  EXPECT_EQ(sc.uni.num_classes, 6);
  // psi3's induced FD is trivial ({pid,cid} -> {pid,cid}); 3 set nodes.
  EXPECT_EQ(hg.graph.num_nodes(), 1 + 6 + 3);
  // Root edges: 4 constant classes (p0, may, 2015, nyc).
  int root_edges = 0;
  for (const Hyperedge& e : hg.graph.edges()) {
    if (e.head.size() == 1 && e.head[0] == hg.root) ++root_edges;
  }
  EXPECT_EQ(root_edges, 4);
  // Every class node reachable from r (the query is fetchable).
  std::vector<bool> reach = hg.graph.Reachable({hg.root});
  for (int c = 0; c < sc.uni.num_classes; ++c) {
    EXPECT_TRUE(reach[static_cast<size_t>(hg.class_node[static_cast<size_t>(c)])])
        << "class " << sc.uni.class_name[static_cast<size_t>(c)];
  }
}

TEST_F(QPlanTest, HypergraphWeightsFollowConstraints) {
  Result<NormalizedQuery> nq = Normalize(MakeQ1(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx_.schema);
  ASSERT_TRUE(report.ok());
  QaHypergraph hg = BuildQaHypergraph(report->spcs[0], report->actualized);
  // The psi1 FD edge (pid -> fid~) must carry weight 5000.
  bool found5000 = false;
  for (const Hyperedge& e : hg.graph.edges()) {
    if (e.weight == 5000.0) found5000 = true;
  }
  EXPECT_TRUE(found5000);
}

// ------------------------------------------------------------- Plan shape ---

TEST_F(QPlanTest, PlanForQ1HasFetchSteps) {
  BoundedPlan plan = Plan(MakeQ1());
  EXPECT_GT(plan.Length(), 5u);
  int fetches = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == PlanStep::Kind::kFetch) ++fetches;
  }
  // Unit fetching via psi1, psi2, psi4 (+ indexing fetches, memoized).
  EXPECT_GE(fetches, 3);
  EXPECT_EQ(plan.output_names.size(), 1u);
}

TEST_F(QPlanTest, PlanLengthBounded) {
  // Lemma 8: plan length O(|Q||A|).
  BoundedPlan plan = Plan(MakeQ0Prime());
  Result<NormalizedQuery> nq = Normalize(MakeQ0Prime(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  size_t q_size = nq->root()->TreeSize();
  size_t a_len = fx_.schema.TotalLength();
  EXPECT_LE(plan.Length(), 4 * q_size * a_len);
}

TEST_F(QPlanTest, RejectsUncoveredQuery) {
  Result<NormalizedQuery> nq =
      Normalize(testutil::MakeQ0(), fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, fx_.schema);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->covered);
  EXPECT_EQ(GeneratePlan(*nq, *report).status().code(),
            StatusCode::kNotCovered);
}

TEST_F(QPlanTest, StaticAccessBoundMatchesPaperArithmetic) {
  // The paper: Q1's plan accesses at most 5000 + 5000*31*2 tuples. Our
  // canonical plan's static bound is of the same order (psi-products).
  BoundedPlan plan = Plan(MakeQ1());
  double bound = plan.StaticAccessBound();
  EXPECT_GT(bound, 0.0);
  EXPECT_LE(bound, 5000.0 + 5000.0 * 31.0 * 4.0);
}

TEST_F(QPlanTest, ToStringShowsFetchSyntax) {
  BoundedPlan plan = Plan(MakeQ1());
  std::string s = plan.ToString();
  EXPECT_NE(s.find("fetch(X in T"), std::string::npos);
  EXPECT_NE(s.find("output: T"), std::string::npos);
}

// --------------------------------------------------------------- Execution --

TEST_F(QPlanTest, Q1PlanMatchesOracle) {
  BoundedPlan plan = Plan(MakeQ1());
  Table got = Run(plan);
  EXPECT_TRUE(Table::SameSet(got, Oracle(MakeQ1())))
      << got.ToString() << "\nvs\n"
      << Oracle(MakeQ1()).ToString();
}

TEST_F(QPlanTest, Q3PlanMatchesOracle) {
  BoundedPlan plan = Plan(MakeQ3());
  EXPECT_TRUE(Table::SameSet(Run(plan), Oracle(MakeQ3())));
}

TEST_F(QPlanTest, Q0PrimePlanMatchesOracleAndQ0) {
  BoundedPlan plan = Plan(MakeQ0Prime());
  Table got = Run(plan);
  EXPECT_TRUE(Table::SameSet(got, Oracle(MakeQ0Prime())));
  // And Q0' is A0-equivalent to Q0 (the fixture satisfies A0).
  EXPECT_TRUE(Table::SameSet(got, Oracle(testutil::MakeQ0())));
  // The expected answer from Example 1's story: c2 (friends dined there,
  // p0 did not).
  ASSERT_EQ(got.NumRows(), 1u);
  EXPECT_EQ(got.rows()[0][0], Value::Str("c2"));
}

TEST_F(QPlanTest, ExecStatsCountFetches) {
  BoundedPlan plan = Plan(MakeQ1());
  ExecStats stats;
  Run(plan, &stats);
  EXPECT_GT(stats.tuples_fetched, 0u);
  EXPECT_GT(stats.fetch_probes, 0u);
  // On the tiny fixture the plan touches far less than the whole database
  // would be at scale; sanity: bounded by the static bound.
  EXPECT_LE(static_cast<double>(stats.tuples_fetched),
            plan.StaticAccessBound());
}

TEST_F(QPlanTest, AccessIndependentOfIrrelevantData) {
  // Add many tuples NOT reachable from p0's neighborhood: fetch count for
  // the Q1 plan must not change (bounded evaluability in action).
  BoundedPlan plan = Plan(MakeQ1());
  ExecStats before;
  Run(plan, &before);

  for (int i = 0; i < 500; ++i) {
    std::string pid = "other_" + std::to_string(i);
    ASSERT_TRUE(
        fx_.db.Insert("friend", {Value::Str(pid), Value::Str("fx")}).ok());
    ASSERT_TRUE(fx_.db
                    .Insert("dine", {Value::Str(pid), Value::Str("cx"),
                                     Value::Int(5), Value::Int(2015)})
                    .ok());
  }
  Result<IndexSet> set = IndexSet::Build(fx_.db, fx_.schema);
  ASSERT_TRUE(set.ok());
  indices_ = std::move(*set);

  ExecStats after;
  Run(plan, &after);
  EXPECT_EQ(before.tuples_fetched, after.tuples_fetched);
}

TEST_F(QPlanTest, UnsatisfiableSubqueryYieldsEmptyPlan) {
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "cid"), Value::Str("c1")),
                           EqC(A("cafe", "cid"), Value::Str("c2"))}),
      {A("cafe", "cid")});
  BoundedPlan plan = Plan(q);
  Table got = Run(plan);
  EXPECT_EQ(got.NumRows(), 0u);
}

TEST_F(QPlanTest, UnionPlanMatchesOracle) {
  RaExprPtr left = MakeQ1();
  RaExprPtr right = Project(
      Select(RelAs("cafe", "cafe5"),
             {EqC(A("cafe5", "city"), Value::Str("sf"))}),
      {A("cafe5", "cid")});
  // cafe5 needs an indexing constraint with covered X: city is constant,
  // but psi4's X = {cid} is not covered... add () -> cid style? Instead use
  // cid from the finite domain via a join-free anchored query: skip; use a
  // covered right side: cafes of dine2 with pid+cid bound.
  AccessSchema bigger = fx_.schema;
  ASSERT_TRUE(bigger.Add(*AccessConstraint::Parse("cafe(() -> (cid), 100)"),
                         fx_.db.catalog())
                  .ok());
  RaExprPtr q = Union(left, right);
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, bigger);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered) << report->Explain();
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<IndexSet> bigger_set = IndexSet::Build(fx_.db, bigger);
  ASSERT_TRUE(bigger_set.ok());
  Result<Table> got = ExecutePlan(*plan, *bigger_set, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(Table::SameSet(*got, Oracle(q)));
}

TEST_F(QPlanTest, EmptyLhsFetchPlan) {
  AccessSchema schema;
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("cafe(() -> (cid), 50)"),
                         fx_.db.catalog())
                  .ok());
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("cafe((cid) -> (city), 1)"),
                         fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(Rel("cafe"), {A("cafe", "city")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<IndexSet> set = IndexSet::Build(fx_.db, schema);
  ASSERT_TRUE(set.ok());
  Result<Table> got = ExecutePlan(*plan, *set, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(Table::SameSet(*got, Oracle(q)));
}

TEST_F(QPlanTest, SharedClassAttributesHandled) {
  // sigma_{pid = cid}: both attrs share one class; X input duplication.
  AccessSchema schema;
  ASSERT_TRUE(schema.Add(
                  *AccessConstraint::Parse("dine((pid, cid) -> (pid, cid), 1)"),
                  fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(
      Select(Rel("dine"), {EqA(A("dine", "pid"), A("dine", "cid")),
                           EqC(A("dine", "pid"), Value::Str("c1"))}),
      {A("dine", "cid")});
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered) << report->Explain();
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<IndexSet> set = IndexSet::Build(fx_.db, schema);
  ASSERT_TRUE(set.ok());
  Result<Table> got = ExecutePlan(*plan, *set, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(Table::SameSet(*got, Oracle(q)));
}

}  // namespace
}  // namespace bqe
