#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/physical_plan.h"
#include "serve/query_service.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Result-cache stress: the tentpole claim is that duplicate reads served
/// straight off the cache are indistinguishable from re-execution, even
/// while a writer keeps moving the data epoch. Three phases pin that:
///   1. a concurrent storm (clients + delta writer) for TSan coverage of
///      the lock-free admission lookup racing Apply,
///   2. a serial delta/read interleave proving every cache hit is
///      byte-identical to the miss that populated it and set-equal to an
///      uncached oracle engine, and
///   3. a distinct-query flood over a small byte budget proving LRU
///      eviction actually runs under service traffic.
/// The final stats snapshot must satisfy the exact four-way request
/// accounting with non-zero hits AND evictions.

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(ResultCacheStressTest, CachedReadsStayCoherentUnderDeltaChurn) {
  GraphChurnConfig cfg;
  cfg.pids = 40;  // Enough distinct fingerprints to flood the byte budget.
  GraphChurnFixture fx = MakeGraphChurnFixture(cfg);
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 40;
  constexpr int kStormBatches = 30;
  constexpr int kHotQueries = 6;
  constexpr int kInterleaveRounds = 20;
  constexpr int kCheckedQueries = 4;
  constexpr int kFloodQueries = 40;

  std::vector<RaExprPtr> hot;
  for (int i = 0; i < kHotQueries; ++i) {
    hot.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  }

  ServiceOptions sopts;
  sopts.shards = 3;
  sopts.batch_window = 16;
  // Small enough that kFloodQueries distinct results cannot all fit (each
  // entry costs >200 bytes of fingerprint alone), large enough that any
  // single result is never oversized.
  sopts.result_cache_bytes = 8192;
  QueryService service(&engine, sopts);

  // Phase 1: concurrent storm. Clients hammer the hot fingerprints while a
  // writer applies paced delta batches; TSan watches the admission-time
  // Coherence() loads race Apply's epoch bumps.
  std::atomic<int> answered{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t qi = static_cast<size_t>(c + i) % hot.size();
        QueryResponse r = service.Query(hot[qi]);
        if (!r.status.ok() || !r.used_bounded_plan || r.table == nullptr) {
          failed.store(true);
        }
        answered.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int b = 0; b < kStormBatches; ++b) {
      while (answered.load() < b * 3 && !failed.load()) {
        std::this_thread::yield();
      }
      serve::DeltaResponse dr =
          service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rcs", b));
      if (!dr.status.ok() || dr.stats.constraints_grown != 0) {
        failed.store(true);
      }
    }
  });
  for (std::thread& t : clients) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // Phase 2: serial delta/read interleave. Every round moves the data
  // epoch (invalidating all cached entries), re-executes each checked
  // query once, then re-reads it: the re-read MUST be a cache hit sharing
  // the very table the execution produced — byte-identical by
  // construction — and must match both a freshly prepared plan and an
  // independent uncached engine.
  EngineOptions uncached_opts = DeterministicOptions(2);
  uncached_opts.plan_cache = false;
  BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
  for (int b = 0; b < kInterleaveRounds; ++b) {
    serve::DeltaResponse dr =
        service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rci", b));
    ASSERT_TRUE(dr.status.ok());
    ASSERT_TRUE(oracle.BuildIndices().ok());  // Re-mirror the fresh data.
    for (int qi = 0; qi < kCheckedQueries; ++qi) {
      std::string ctx =
          "round " + std::to_string(b) + " query " + std::to_string(qi);
      QueryResponse r1 = service.Query(hot[qi]);  // Epoch moved: executes.
      ASSERT_TRUE(r1.status.ok()) << ctx;
      EXPECT_FALSE(r1.result_cache_hit) << ctx;
      QueryResponse r2 = service.Query(hot[qi]);  // Must serve off cache.
      ASSERT_TRUE(r2.status.ok()) << ctx;
      EXPECT_TRUE(r2.result_cache_hit) << ctx;
      EXPECT_TRUE(r2.used_bounded_plan) << ctx;
      EXPECT_EQ(r2.table, r1.table) << ctx;  // Same pinned table.
      ExpectRowForRowEqual(*r2.table, FreshlyPreparedAnswer(engine, hot[qi], 2),
                           ctx);
      Result<ExecuteResult> fresh = oracle.Execute(hot[qi]);
      ASSERT_TRUE(fresh.ok()) << ctx;
      EXPECT_TRUE(Table::SameSet(*r2.table, fresh->table)) << ctx;
    }
  }

  // Phase 3: flood with distinct fingerprints so total entry bytes exceed
  // the 8 KiB budget and LRU eviction provably runs.
  for (int i = 0; i < kFloodQueries; ++i) {
    QueryResponse r = service.Query(FriendsNycCafesQuery(fx.cfg.Pid(i)));
    ASSERT_TRUE(r.status.ok()) << "flood query " << i;
  }

  ServiceStats s = service.stats();
  service.Shutdown();

  constexpr uint64_t kTotalQueries =
      static_cast<uint64_t>(kClients) * kRequestsPerClient +
      static_cast<uint64_t>(kInterleaveRounds) * kCheckedQueries * 2 +
      kFloodQueries;
  constexpr uint64_t kTotalBatches =
      static_cast<uint64_t>(kStormBatches) + kInterleaveRounds;
  // Exact four-way accounting: every request was a leader execution, a
  // coalesced follower, an admission-time cache hit, or a window-time hit.
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window,
            kTotalQueries);
  EXPECT_EQ(s.admitted + s.result_hits_admission,
            kTotalQueries + kTotalBatches);
  EXPECT_EQ(s.rejected, 0u);
  // Phase 2 alone guarantees kInterleaveRounds * kCheckedQueries hits.
  EXPECT_GE(s.result_cache.hits,
            static_cast<uint64_t>(kInterleaveRounds) * kCheckedQueries);
  EXPECT_GT(s.result_cache.evictions, 0u);  // Phase 3 overflowed the budget.
  EXPECT_EQ(s.result_cache.oversized, 0u);
  EXPECT_EQ(s.result_cache.hits,
            s.result_hits_admission + s.result_hits_window);
  EXPECT_EQ(s.result_cache.hits + s.result_cache.misses,
            s.result_cache.lookups);
  EXPECT_EQ(s.delta_batches, kTotalBatches);
  EXPECT_EQ(s.data_epoch, kTotalBatches);
  // Data-only churn: the bounded plans never went stale, so the engine
  // never re-prepared and the schema epoch never moved.
  EXPECT_EQ(s.engine.reprepares, 0u);
  EXPECT_EQ(s.schema_epoch, 1u);
}

}  // namespace
}  // namespace bqe
