#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/physical_plan.h"
#include "serve/query_service.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Result-cache stress: the tentpole claim is that duplicate reads served
/// straight off the cache are indistinguishable from re-execution, even
/// while a writer keeps moving the data epoch — and, with incremental view
/// maintenance, that a delta batch *patches* resident entries instead of
/// invalidating them. Three phases pin that:
///   1. a concurrent storm (clients + delta writer) for TSan coverage of
///      the lock-free admission lookup racing Apply and the in-gate
///      Refresh,
///   2. a serial delta/read interleave proving every post-batch read is a
///      REFRESHED cache hit whose patched table matches a freshly prepared
///      plan as an exact bag and an uncached oracle engine as a set, and
///   3. a distinct-query flood over a small byte budget proving LRU
///      eviction actually runs under service traffic.
/// The final stats snapshot must satisfy the exact five-way request
/// accounting with non-zero refreshed hits AND evictions.

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

/// Exact multiset equality, order-free: a refreshed table keeps surviving
/// rows in place and appends net additions, so its row order legitimately
/// differs from a fresh execution's.
void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(ResultCacheStressTest, CachedReadsStayCoherentUnderDeltaChurn) {
  GraphChurnConfig cfg;
  cfg.pids = 40;  // Enough distinct fingerprints to flood the byte budget.
  GraphChurnFixture fx = MakeGraphChurnFixture(cfg);
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 40;
  constexpr int kStormBatches = 30;
  constexpr int kHotQueries = 6;
  constexpr int kInterleaveRounds = 20;
  constexpr int kCheckedQueries = 4;
  constexpr int kFloodQueries = 40;

  std::vector<RaExprPtr> hot;
  for (int i = 0; i < kHotQueries; ++i) {
    hot.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  }

  ServiceOptions sopts;
  sopts.shards = 3;
  sopts.batch_window = 16;
  // A maintenance handle retains the plan's intermediate bags (~0.5 MiB for
  // these 3-relation join queries — far more than the 19-row result it
  // maintains, and all charged to the entry honestly). Size the budget so
  // the kHotQueries working set is never evicted mid-check and no single
  // entry is oversized, but kFloodQueries distinct entries cannot all fit.
  sopts.result_cache_bytes = 8u << 20;
  QueryService service(&engine, sopts);

  // Phase 1: concurrent storm. Clients hammer the hot fingerprints while a
  // writer applies paced delta batches; TSan watches the admission-time
  // Coherence() loads race Apply's epoch bumps.
  std::atomic<int> answered{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t qi = static_cast<size_t>(c + i) % hot.size();
        QueryResponse r = service.Query(hot[qi]);
        if (!r.status.ok() || !r.used_bounded_plan || r.table == nullptr) {
          failed.store(true);
        }
        answered.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int b = 0; b < kStormBatches; ++b) {
      while (answered.load() < b * 3 && !failed.load()) {
        std::this_thread::yield();
      }
      serve::DeltaResponse dr =
          service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rcs", b));
      if (!dr.status.ok() || dr.stats.constraints_grown != 0) {
        failed.store(true);
      }
    }
  });
  for (std::thread& t : clients) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // Phase 2: serial delta/read interleave. Every round moves the data
  // epoch, and the batch's own gate hold pushes the deltas through every
  // resident entry's maintenance handle: BOTH post-batch reads must be
  // refreshed cache hits sharing one patched table — never a re-execution
  // — and that table must match a freshly prepared plan as an exact bag
  // and an independent uncached engine as a set.
  EngineOptions uncached_opts = DeterministicOptions(2);
  uncached_opts.plan_cache = false;
  BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
  // Promotion step: handles are reuse-promoted, and a pathological storm
  // schedule (all reads before any batch) leaves the checked entries
  // without one. One batch plus one read per checked fingerprint pins the
  // invariant the interleave needs — resident AND maintained — whatever
  // the storm did: the read is either a refreshed hit (already maintained)
  // or a promoting re-execution.
  ASSERT_TRUE(
      service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rcp", 0)).status.ok());
  for (int qi = 0; qi < kCheckedQueries; ++qi) {
    ASSERT_TRUE(service.Query(hot[qi]).status.ok());
  }
  for (int b = 0; b < kInterleaveRounds; ++b) {
    serve::DeltaResponse dr =
        service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rci", b));
    ASSERT_TRUE(dr.status.ok());
    ASSERT_TRUE(oracle.BuildIndices().ok());  // Re-mirror the fresh data.
    for (int qi = 0; qi < kCheckedQueries; ++qi) {
      std::string ctx =
          "round " + std::to_string(b) + " query " + std::to_string(qi);
      QueryResponse r1 = service.Query(hot[qi]);  // Patched in place: hit.
      ASSERT_TRUE(r1.status.ok()) << ctx;
      EXPECT_TRUE(r1.result_cache_hit) << ctx;
      EXPECT_TRUE(r1.result_refreshed) << ctx;
      QueryResponse r2 = service.Query(hot[qi]);  // Still served off cache.
      ASSERT_TRUE(r2.status.ok()) << ctx;
      EXPECT_TRUE(r2.result_cache_hit) << ctx;
      EXPECT_TRUE(r2.used_bounded_plan) << ctx;
      EXPECT_EQ(r2.table, r1.table) << ctx;  // Same pinned patched table.
      ExpectSameBag(*r2.table, FreshlyPreparedAnswer(engine, hot[qi], 2), ctx);
      Result<ExecuteResult> fresh = oracle.Execute(hot[qi]);
      ASSERT_TRUE(fresh.ok()) << ctx;
      EXPECT_TRUE(Table::SameSet(*r2.table, fresh->table)) << ctx;
    }
  }

  // Targeted row-moving refresh. The storm and interleave tags recycle the
  // same (pid, cafe) combinations, so under set semantics their patches
  // legitimately move zero rows; to pin refreshed_rows deterministically,
  // give Pid(0) a brand-new friend dining at an nyc cafe provably absent
  // from the current answer — the in-gate refresh must surface exactly
  // that row on the very next (cached, refreshed) read.
  {
    QueryResponse cur = service.Query(hot[0]);
    ASSERT_TRUE(cur.status.ok());
    int free_cafe = -1;
    for (int m = 0; m < fx.cfg.cafes && free_cafe < 0; m += 3) {
      bool present = false;
      for (const Tuple& row : cur.table->rows()) {
        if (row[0] == Value::Str(fx.cfg.Cid(m))) present = true;
      }
      if (!present) free_cafe = m;
    }
    ASSERT_GE(free_cafe, 0) << "no free nyc cafe to target";
    uint64_t rows_before = service.stats().result_cache.refreshed_rows;
    ASSERT_TRUE(service
                    .ApplyDeltas({Delta::Insert("friend",
                                                {Value::Str(fx.cfg.Pid(0)),
                                                 Value::Str("rct-new")}),
                                  Delta::Insert(
                                      "dine",
                                      {Value::Str("rct-new"),
                                       Value::Str(fx.cfg.Cid(free_cafe)),
                                       Value::Int(5), Value::Int(2015)})})
                    .status.ok());
    QueryResponse patched = service.Query(hot[0]);
    ASSERT_TRUE(patched.status.ok());
    EXPECT_TRUE(patched.result_cache_hit);
    EXPECT_TRUE(patched.result_refreshed);
    EXPECT_EQ(patched.table->NumRows(), cur.table->NumRows() + 1);
    EXPECT_GT(service.stats().result_cache.refreshed_rows, rows_before);
  }

  // Phase 3: flood with distinct fingerprints so total entry bytes exceed
  // the byte budget and LRU eviction provably runs. Handles are
  // reuse-promoted and carry the weight (~0.5 MiB of retained join bags vs
  // a few hundred result bytes), so each fingerprint is read once, swept
  // by one more batch, and read again — the second executions retain
  // handles and their bytes overflow the budget.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < kFloodQueries; ++i) {
      QueryResponse r = service.Query(FriendsNycCafesQuery(fx.cfg.Pid(i)));
      ASSERT_TRUE(r.status.ok()) << "flood pass " << pass << " query " << i;
    }
    if (pass == 0) {
      ASSERT_TRUE(
          service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rcf", 0)).status.ok());
    }
  }

  ServiceStats s = service.stats();
  service.Shutdown();

  constexpr uint64_t kTotalQueries =
      static_cast<uint64_t>(kClients) * kRequestsPerClient +
      /*promotion step=*/kCheckedQueries + /*targeted refresh reads=*/2 +
      static_cast<uint64_t>(kInterleaveRounds) * kCheckedQueries * 2 +
      2ull * kFloodQueries;
  constexpr uint64_t kTotalBatches =
      static_cast<uint64_t>(kStormBatches) +
      /*promotion + targeted + flood batches=*/3 + kInterleaveRounds;
  // Exact five-way accounting: every request was a leader execution, a
  // coalesced follower, an admission-time cache hit, a window-time hit, or
  // a hit on an IVM-refreshed entry.
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window + s.result_hits_refreshed,
            kTotalQueries);
  // Admission accounting brackets: refreshed hits are not split by site,
  // so the exact pre-IVM identity becomes a two-sided bound — admission
  // absorbed at least the plain admission hits and at most also every
  // refreshed hit.
  EXPECT_LE(s.admitted + s.result_hits_admission,
            kTotalQueries + kTotalBatches);
  EXPECT_GE(s.admitted + s.result_hits_admission + s.result_hits_refreshed,
            kTotalQueries + kTotalBatches);
  EXPECT_EQ(s.rejected, 0u);
  // Phase 2 alone guarantees 2 refreshed hits per checked query per round.
  EXPECT_GE(s.result_hits_refreshed,
            2ull * kInterleaveRounds * kCheckedQueries);
  EXPECT_GE(s.result_cache.refreshes,
            static_cast<uint64_t>(kInterleaveRounds) * kCheckedQueries);
  EXPECT_EQ(s.result_cache.refresh_fallbacks, 0u)
      << "insert-only churn through fetch/join plans must stay maintainable";
  EXPECT_GT(s.result_cache.refreshed_rows, 0u);
  EXPECT_GT(s.result_cache.evictions, 0u);  // Phase 3 overflowed the budget.
  EXPECT_EQ(s.result_cache.oversized, 0u);
  EXPECT_EQ(s.result_cache.hits, s.result_hits_admission +
                                     s.result_hits_window +
                                     s.result_hits_refreshed);
  EXPECT_EQ(s.result_cache.hits + s.result_cache.misses,
            s.result_cache.lookups);
  EXPECT_EQ(s.delta_batches, kTotalBatches);
  EXPECT_EQ(s.data_epoch, kTotalBatches);
  // Data-only churn: the bounded plans never went stale, so the engine
  // never re-prepared and the schema epoch never moved.
  EXPECT_EQ(s.engine.reprepares, 0u);
  EXPECT_EQ(s.schema_epoch, 1u);
}

}  // namespace
}  // namespace bqe
