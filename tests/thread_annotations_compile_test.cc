#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

/// Negative-compilation tests for the thread-safety annotations: the
/// contracts in common/thread_annotations.h are only worth their keep if
/// violating them actually breaks the build. Each case re-invokes the
/// build's own compiler (-fsyntax-only) on a small source file under
/// tests/thread_annotations_compile/ and asserts the exit status:
///
///   ok.cc                  — correctly locked; must compile everywhere
///                            (proves the harness isn't failing for an
///                            unrelated reason, e.g. a bad include path).
///   guarded_by_unlocked.cc — GUARDED_BY field touched without the lock;
///                            must FAIL under clang -Werror=thread-safety.
///   requires_unlocked.cc   — REQUIRES function called without the lock;
///                            must FAIL under clang -Werror=thread-safety.
///
/// Under GCC the annotations expand to nothing, so the negative cases are
/// skipped (not passed): only the clang CI lane proves enforcement. The
/// macros below are injected by CMake (target_compile_definitions).

namespace bqe {
namespace {

/// Exit status of compiling one case file, or -1 if the compiler could not
/// be launched at all.
int CompileCase(const std::string& file, bool thread_safety) {
  std::string cmd = std::string(BQE_COMPILE_TEST_CXX) +
                    " -std=c++17 -fsyntax-only -I" BQE_COMPILE_TEST_INCLUDE;
  if (thread_safety) cmd += " -Wthread-safety -Werror=thread-safety";
  cmd += " " BQE_COMPILE_TEST_CASE_DIR "/" + file + " > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  return rc;
}

constexpr bool kIsClang = BQE_COMPILE_TEST_IS_CLANG != 0;

TEST(ThreadAnnotationsCompileTest, CorrectlyLockedCodeCompiles) {
  // Positive control, with the analysis on where available: a false
  // positive in our annotations would surface here, not in CI noise.
  EXPECT_EQ(CompileCase("ok.cc", /*thread_safety=*/kIsClang), 0)
      << "harness broken: the correctly locked control case must compile";
}

TEST(ThreadAnnotationsCompileTest, GuardedByWithoutLockFailsToBuild) {
  if (!kIsClang) {
    GTEST_SKIP() << "capability analysis needs clang; annotations are no-ops "
                    "under this compiler";
  }
  // Sanity: the file is valid C++ — it only dies under the analysis.
  ASSERT_EQ(CompileCase("guarded_by_unlocked.cc", /*thread_safety=*/false), 0);
  EXPECT_NE(CompileCase("guarded_by_unlocked.cc", /*thread_safety=*/true), 0)
      << "unlocked write to a GUARDED_BY field compiled: the annotation "
         "contract is not being enforced";
}

TEST(ThreadAnnotationsCompileTest, RequiresCalledUnlockedFailsToBuild) {
  if (!kIsClang) {
    GTEST_SKIP() << "capability analysis needs clang; annotations are no-ops "
                    "under this compiler";
  }
  ASSERT_EQ(CompileCase("requires_unlocked.cc", /*thread_safety=*/false), 0);
  EXPECT_NE(CompileCase("requires_unlocked.cc", /*thread_safety=*/true), 0)
      << "calling a REQUIRES(mu) function without the lock compiled: the "
         "annotation contract is not being enforced";
}

}  // namespace
}  // namespace bqe
