#ifndef BQE_TESTS_TESTUTIL_H_
#define BQE_TESTS_TESTUTIL_H_

#include <string>
#include <vector>

#include "constraints/access_schema.h"
#include "ra/builder.h"
#include "storage/database.h"

namespace bqe {
namespace testutil {

/// The paper's running example (Example 1): Graph Search on
/// friend(pid, fid), dine(pid, cid, month, year), cafe(cid, city),
/// with access schema A0:
///   psi1: friend(pid -> fid, 5000)
///   psi2: dine((pid, year, month) -> cid, 31)
///   psi3: dine((pid, cid) -> (pid, cid), 1)
///   psi4: cafe(cid -> city, 1)
struct GraphSearchFixture {
  Database db;
  AccessSchema schema;

  /// Constraint ids in A0, in the paper's psi order.
  int psi1 = -1, psi2 = -1, psi3 = -1, psi4 = -1;
};

/// Builds the Example-1 schema and (optionally) a small instance:
/// person "p0" with friends f1, f2; dinings in may/2015 and some other
/// months; cafes in nyc and elsewhere.
inline GraphSearchFixture MakeGraphSearch(bool with_data = true) {
  GraphSearchFixture fx;
  auto str = [](const char* s) { return Attribute{s, ValueType::kString}; };
  auto intp = [](const char* s) { return Attribute{s, ValueType::kInt}; };

  Status st = fx.db.CreateTable(
      RelationSchema("friend", {str("pid"), str("fid")}));
  st = fx.db.CreateTable(RelationSchema(
      "dine", {str("pid"), str("cid"), intp("month"), intp("year")}));
  st = fx.db.CreateTable(RelationSchema("cafe", {str("cid"), str("city")}));

  auto add = [&](const char* text) {
    AccessConstraint c = AccessConstraint::Parse(text).value();
    Status s = fx.schema.Add(c, fx.db.catalog());
    (void)s;
    return static_cast<int>(fx.schema.size()) - 1;
  };
  fx.psi1 = add("friend((pid) -> (fid), 5000)");
  fx.psi2 = add("dine((pid, year, month) -> (cid), 31)");
  fx.psi3 = add("dine((pid, cid) -> (pid, cid), 1)");
  fx.psi4 = add("cafe((cid) -> (city), 1)");

  if (with_data) {
    auto S = [](const char* s) { return Value::Str(s); };
    auto I = [](int64_t i) { return Value::Int(i); };
    // p0's friends.
    st = fx.db.Insert("friend", {S("p0"), S("f1")});
    st = fx.db.Insert("friend", {S("p0"), S("f2")});
    st = fx.db.Insert("friend", {S("f1"), S("f2")});
    // Dinings: f1 and f2 dined in may 2015 at c1 (nyc) and c2 (nyc);
    // p0 has dined at c1 but never at c2; f2 also dined at c3 (sf).
    st = fx.db.Insert("dine", {S("f1"), S("c1"), I(5), I(2015)});
    st = fx.db.Insert("dine", {S("f1"), S("c2"), I(5), I(2015)});
    st = fx.db.Insert("dine", {S("f2"), S("c2"), I(5), I(2015)});
    st = fx.db.Insert("dine", {S("f2"), S("c3"), I(5), I(2015)});
    st = fx.db.Insert("dine", {S("p0"), S("c1"), I(1), I(2014)});
    st = fx.db.Insert("dine", {S("p0"), S("c4"), I(2), I(2015)});
    // Cafes.
    st = fx.db.Insert("cafe", {S("c1"), S("nyc")});
    st = fx.db.Insert("cafe", {S("c2"), S("nyc")});
    st = fx.db.Insert("cafe", {S("c3"), S("sf")});
    st = fx.db.Insert("cafe", {S("c4"), S("nyc")});
  }
  return fx;
}

/// Q1 of Example 1: friends' may-2015 nyc restaurants.
///   Q1(cid) = pi_cid(friend(p0, fid) |x| dine |x| cafe(city = nyc))
inline RaExprPtr MakeQ1() {
  return Project(
      Select(Product(Product(Rel("friend"), Rel("dine")), Rel("cafe")),
             {EqC(A("friend", "pid"), Value::Str("p0")),
              EqA(A("friend", "fid"), A("dine", "pid")),
              EqC(A("dine", "month"), Value::Int(5)),
              EqC(A("dine", "year"), Value::Int(2015)),
              EqA(A("dine", "cid"), A("cafe", "cid")),
              EqC(A("cafe", "city"), Value::Str("nyc"))}),
      {A("cafe", "cid")});
}

/// Q2 of Example 1: restaurants p0 has dined in (not bounded under A0).
inline RaExprPtr MakeQ2(const std::string& occ = "dine") {
  return Project(Select(RelAs("dine", occ),
                        {EqC(A(occ, "pid"), Value::Str("p0"))}),
                 {A(occ, "cid")});
}

/// Q0 = Q1 - Q2 (the paper's headline query; bounded but not covered).
inline RaExprPtr MakeQ0() {
  return Diff(MakeQ1(), MakeQ2("dine2"));
}

/// Q3 of Example 1: Q1 |x|_{cid = cid2} Q2, projected to Q2's cid — the
/// covered replacement for Q2 (occurrences disjoint from Q1/Q2).
inline RaExprPtr MakeQ3() {
  RaExprPtr q1 = Project(
      Select(Product(Product(RelAs("friend", "friend3"), RelAs("dine", "dine3")),
                     RelAs("cafe", "cafe3")),
             {EqC(A("friend3", "pid"), Value::Str("p0")),
              EqA(A("friend3", "fid"), A("dine3", "pid")),
              EqC(A("dine3", "month"), Value::Int(5)),
              EqC(A("dine3", "year"), Value::Int(2015)),
              EqA(A("dine3", "cid"), A("cafe3", "cid")),
              EqC(A("cafe3", "city"), Value::Str("nyc"))}),
      {A("cafe3", "cid")});
  // Join with dine2 on cid, keeping dine2's cid.
  return Project(
      Select(Product(q1, RelAs("dine", "dine2")),
             {EqA(A("cafe3", "cid"), A("dine2", "cid")),
              EqC(A("dine2", "pid"), Value::Str("p0"))}),
      {A("dine2", "cid")});
}

/// Q0' = Q1 - Q3: the covered A0-equivalent of Q0 (Example 1).
inline RaExprPtr MakeQ0Prime() {
  return Diff(MakeQ1(), MakeQ3());
}

}  // namespace testutil
}  // namespace bqe

#endif  // BQE_TESTS_TESTUTIL_H_
