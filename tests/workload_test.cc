#include <gtest/gtest.h>

#include "constraints/validate.h"
#include "core/cov.h"
#include "ra/normalize.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

// Shared tiny-scale datasets (built once; generation at scale 0.02 is fast).
const GeneratedDataset& Airca() {
  static const GeneratedDataset ds = [] {
    Result<GeneratedDataset> r = MakeAirca(0.02, 42);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  }();
  return ds;
}

const GeneratedDataset& Tfacc() {
  static const GeneratedDataset ds = [] {
    Result<GeneratedDataset> r = MakeTfacc(0.02, 42);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  }();
  return ds;
}

const GeneratedDataset& Mcbm() {
  static const GeneratedDataset ds = [] {
    Result<GeneratedDataset> r = MakeMcbm(0.02, 42);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  }();
  return ds;
}

// ---------------------------------------------------------------- Shapes ---

TEST(DatasetTest, AircaHasSevenTables) {
  EXPECT_EQ(Airca().db.catalog().size(), 7u);
  EXPECT_GT(Airca().schema.size(), 15u);
  EXPECT_GT(Airca().db.TotalTuples(), 1000u);
}

TEST(DatasetTest, TfaccHasNineteenTables) {
  EXPECT_EQ(Tfacc().db.catalog().size(), 19u);
  EXPECT_GT(Tfacc().schema.size(), 25u);
}

TEST(DatasetTest, McbmHasTwelveTables) {
  EXPECT_EQ(Mcbm().db.catalog().size(), 12u);
  EXPECT_GT(Mcbm().schema.size(), 20u);
}

TEST(DatasetTest, AllDatasetsSatisfyTheirSchemas) {
  for (const GeneratedDataset* ds : {&Airca(), &Tfacc(), &Mcbm()}) {
    Result<ValidationReport> report = Validate(ds->db, ds->schema);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->satisfied) << ds->name << "\n" << report->ToString();
  }
}

TEST(DatasetTest, JoinEdgesReferenceRealAttributes) {
  for (const GeneratedDataset* ds : {&Airca(), &Tfacc(), &Mcbm()}) {
    for (const JoinEdge& e : ds->join_edges) {
      const RelationSchema* a = ds->db.catalog().Get(e.rel_a);
      const RelationSchema* b = ds->db.catalog().Get(e.rel_b);
      ASSERT_NE(a, nullptr) << ds->name << ": " << e.rel_a;
      ASSERT_NE(b, nullptr) << ds->name << ": " << e.rel_b;
      EXPECT_TRUE(a->HasAttr(e.attr_a)) << e.rel_a << "." << e.attr_a;
      EXPECT_TRUE(b->HasAttr(e.attr_b)) << e.rel_b << "." << e.attr_b;
    }
  }
}

TEST(DatasetTest, AnchorsReferenceRealAttributes) {
  for (const GeneratedDataset* ds : {&Airca(), &Tfacc(), &Mcbm()}) {
    for (const Anchor& a : ds->anchors) {
      const RelationSchema* schema = ds->db.catalog().Get(a.rel);
      ASSERT_NE(schema, nullptr) << ds->name << ": " << a.rel;
      for (const std::string& attr : a.attrs) {
        EXPECT_TRUE(schema->HasAttr(attr)) << a.rel << "." << attr;
      }
    }
  }
}

TEST(DatasetTest, DeterministicForSameSeed) {
  Result<GeneratedDataset> a = MakeAirca(0.01, 7);
  Result<GeneratedDataset> b = MakeAirca(0.01, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->db.TotalTuples(), b->db.TotalTuples());
  const Table* ta = a->db.Get("ontime");
  const Table* tb = b->db.Get("ontime");
  ASSERT_EQ(ta->NumRows(), tb->NumRows());
  for (size_t i = 0; i < std::min<size_t>(50, ta->NumRows()); ++i) {
    EXPECT_EQ(CompareTuples(ta->rows()[i], tb->rows()[i]), 0);
  }
}

TEST(DatasetTest, ScaleGrowsData) {
  Result<GeneratedDataset> small = MakeAirca(0.01, 7);
  Result<GeneratedDataset> large = MakeAirca(0.05, 7);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->db.TotalTuples(), small->db.TotalTuples());
}

TEST(DatasetTest, DispatchByName) {
  EXPECT_TRUE(MakeDataset("airca", 0.01, 1).ok());
  EXPECT_TRUE(MakeDataset("TFACC", 0.01, 1).ok());
  EXPECT_FALSE(MakeDataset("unknown", 0.01, 1).ok());
}

TEST(DatasetTest, CalibrateBoundsNeverLowers) {
  Result<GeneratedDataset> r = MakeAirca(0.01, 3);
  ASSERT_TRUE(r.ok());
  std::vector<int64_t> before;
  for (const AccessConstraint& c : r->schema.constraints()) before.push_back(c.n);
  ASSERT_TRUE(CalibrateBounds(r->db, &r->schema).ok());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_GE(r->schema.at(static_cast<int>(i)).n, 1);
  }
}

TEST(DatasetTest, DiscoveryExtraAddsConstraints) {
  Result<GeneratedDataset> plain = MakeAirca(0.005, 5);
  DatasetOptions opts;
  opts.discover_extra = true;
  Result<GeneratedDataset> mined = MakeAirca(0.005, 5, opts);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_GT(mined->schema.size(), plain->schema.size());
  Result<ValidationReport> report = Validate(mined->db, mined->schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->ToString();
}

// -------------------------------------------------------------- Querygen ---

TEST(QueryGenTest, GeneratesNormalizableQueries) {
  for (const GeneratedDataset* ds : {&Airca(), &Tfacc(), &Mcbm()}) {
    for (uint64_t seed = 0; seed < 25; ++seed) {
      QueryGenConfig cfg;
      cfg.seed = seed;
      cfg.num_join = static_cast<int>(seed % 4);
      cfg.num_unidiff = static_cast<int>(seed % 3);
      Result<RaExprPtr> q = GenerateQuery(*ds, cfg);
      ASSERT_TRUE(q.ok()) << ds->name << " seed " << seed << ": "
                          << q.status().ToString();
      EXPECT_TRUE(Normalize(*q, ds->db.catalog()).ok());
    }
  }
}

TEST(QueryGenTest, DeterministicPerSeed) {
  QueryGenConfig cfg;
  cfg.seed = 11;
  Result<RaExprPtr> a = GenerateQuery(Airca(), cfg);
  Result<RaExprPtr> b = GenerateQuery(Airca(), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->TreeSize(), (*b)->TreeSize());
}

TEST(QueryGenTest, UnidiffAddsSetOperators) {
  QueryGenConfig cfg;
  cfg.seed = 3;
  cfg.num_unidiff = 3;
  Result<RaExprPtr> q = GenerateQuery(Airca(), cfg);
  ASSERT_TRUE(q.ok());
  // Root must be a set operator.
  EXPECT_TRUE((*q)->op() == RaOp::kUnion || (*q)->op() == RaOp::kDiff);
}

TEST(QueryGenTest, CoveredGeneratorProducesCoveredQueries) {
  for (const GeneratedDataset* ds : {&Airca(), &Tfacc(), &Mcbm()}) {
    QueryGenConfig cfg;
    cfg.num_sel = 4;
    cfg.num_join = 2;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      cfg.seed = seed * 31;
      Result<RaExprPtr> q = GenerateCoveredQuery(*ds, cfg);
      ASSERT_TRUE(q.ok()) << ds->name << ": " << q.status().ToString();
      Result<NormalizedQuery> nq = Normalize(*q, ds->db.catalog());
      ASSERT_TRUE(nq.ok());
      Result<CoverageReport> report = CheckCoverage(*nq, ds->schema);
      ASSERT_TRUE(report.ok());
      EXPECT_TRUE(report->covered);
    }
  }
}

TEST(QueryGenTest, AnchoredBiasAffectsCoverage) {
  // With uncovered_bias = 1.0 nearly all queries should be uncovered;
  // with 0.0 a solid fraction should be covered.
  int covered_low = 0, covered_high = 0;
  const int trials = 30;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    for (double bias : {0.0, 1.0}) {
      QueryGenConfig cfg;
      cfg.seed = seed;
      cfg.uncovered_bias = bias;
      Result<RaExprPtr> q = GenerateQuery(Airca(), cfg);
      ASSERT_TRUE(q.ok());
      Result<NormalizedQuery> nq = Normalize(*q, Airca().db.catalog());
      ASSERT_TRUE(nq.ok());
      Result<CoverageReport> report = CheckCoverage(*nq, Airca().schema);
      ASSERT_TRUE(report.ok());
      if (report->covered) {
        if (bias == 0.0) {
          ++covered_high;
        } else {
          ++covered_low;
        }
      }
    }
  }
  EXPECT_GT(covered_high, covered_low);
  EXPECT_GT(covered_high, trials / 3);
}

}  // namespace
}  // namespace bqe
