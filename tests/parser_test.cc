#include <gtest/gtest.h>

#include "ra/builder.h"
#include "ra/normalize.h"
#include "ra/parser.h"
#include "ra/printer.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : fx_(MakeGraphSearch(false)) {}

  RaExprPtr Parse(const std::string& sql) {
    Result<RaExprPtr> r = ParseQuery(sql, fx_.db.catalog());
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  Status ParseError(const std::string& sql) {
    Result<RaExprPtr> r = ParseQuery(sql, fx_.db.catalog());
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly parsed";
    return r.ok() ? Status::Ok() : r.status();
  }

  testutil::GraphSearchFixture fx_;
};

TEST_F(ParserTest, SimpleSelect) {
  RaExprPtr q = Parse("SELECT cid FROM cafe WHERE city = 'nyc'");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), RaOp::kProject);
  ASSERT_EQ(q->cols().size(), 1u);
  EXPECT_EQ(q->cols()[0].ToString(), "cafe.cid");
  EXPECT_EQ(q->left()->op(), RaOp::kSelect);
}

TEST_F(ParserTest, SelectWithoutWhere) {
  RaExprPtr q = Parse("SELECT cid FROM cafe");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->left()->op(), RaOp::kRel);
}

TEST_F(ParserTest, StarExpandsAllColumns) {
  RaExprPtr q = Parse("SELECT * FROM dine");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cols().size(), 4u);
}

TEST_F(ParserTest, StarExpandsAcrossFromList) {
  RaExprPtr q = Parse("SELECT * FROM friend, cafe");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cols().size(), 4u);  // 2 + 2.
}

TEST_F(ParserTest, ColumnOutsideFromListFails) {
  // "city" lives in cafe, which is not in the FROM list.
  Status s = ParseError(
      "SELECT dine.cid FROM friend, dine "
      "WHERE friend.fid = dine.pid AND city = 'x' AND month = 5");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST_F(ParserTest, QualifiedAndUnqualifiedColumnsMix) {
  RaExprPtr q = Parse(
      "SELECT dine.cid FROM friend, dine "
      "WHERE friend.fid = dine.pid AND month = 5");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->left()->preds()[1].lhs.ToString(), "dine.month");
}

TEST_F(ParserTest, UnqualifiedUniqueColumnResolves) {
  RaExprPtr q = Parse("SELECT fid FROM friend WHERE pid = 'p0'");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cols()[0].ToString(), "friend.fid");
}

TEST_F(ParserTest, AmbiguousUnqualifiedColumnFails) {
  Status s = ParseError("SELECT cid FROM dine, cafe");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST_F(ParserTest, AliasWithAs) {
  RaExprPtr q = Parse("SELECT d.cid FROM dine AS d WHERE d.pid = 'p0'");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cols()[0].rel, "d");
}

TEST_F(ParserTest, AliasWithoutAs) {
  RaExprPtr q = Parse("SELECT d.cid FROM dine d");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cols()[0].rel, "d");
}

TEST_F(ParserTest, SelfJoinAutoSuffix) {
  RaExprPtr q = Parse(
      "SELECT friend.fid FROM friend, friend AS f2 WHERE friend.fid = f2.pid");
  ASSERT_NE(q, nullptr);
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  EXPECT_TRUE(nq.ok()) << nq.status().ToString();
}

TEST_F(ParserTest, RepeatedTableGetsFreshName) {
  RaExprPtr q = Parse("SELECT dine.cid FROM dine, dine");
  ASSERT_NE(q, nullptr);
  Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
  EXPECT_TRUE(nq.ok()) << nq.status().ToString();
}

TEST_F(ParserTest, AllComparisonOperators) {
  RaExprPtr q = Parse(
      "SELECT cid FROM dine WHERE month < 6 AND month <= 5 AND year > 2000 "
      "AND year >= 2015 AND month <> 2 AND pid != 'x'");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->left()->preds().size(), 6u);
  EXPECT_EQ(q->left()->preds()[0].op, CmpOp::kLt);
  EXPECT_EQ(q->left()->preds()[4].op, CmpOp::kNe);
}

TEST_F(ParserTest, LiteralOnLeftIsFlipped) {
  RaExprPtr q = Parse("SELECT cid FROM dine WHERE 5 < month");
  ASSERT_NE(q, nullptr);
  const Predicate& p = q->left()->preds()[0];
  EXPECT_EQ(p.kind, Predicate::Kind::kAttrConst);
  EXPECT_EQ(p.op, CmpOp::kGt);
  EXPECT_EQ(p.lhs.attr, "month");
}

TEST_F(ParserTest, UnionAndExcept) {
  RaExprPtr q = Parse(
      "(SELECT cid FROM cafe) UNION (SELECT d.cid FROM dine AS d) "
      "EXCEPT (SELECT d2.cid FROM dine AS d2)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), RaOp::kDiff);
  EXPECT_EQ(q->left()->op(), RaOp::kUnion);
}

TEST_F(ParserTest, IntersectDesugarsToDoubleDiff) {
  RaExprPtr q = Parse(
      "(SELECT cid FROM cafe) INTERSECT (SELECT d.cid FROM dine AS d)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), RaOp::kDiff);
  EXPECT_EQ(q->right()->op(), RaOp::kDiff);
  // Must normalize: occurrence names of the cloned copy are fresh.
  EXPECT_TRUE(Normalize(q, fx_.db.catalog()).ok());
}

TEST_F(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_NE(Parse("select cid from cafe where city = 'nyc'"), nullptr);
  EXPECT_NE(Parse("SeLeCt cid FrOm cafe"), nullptr);
}

TEST_F(ParserTest, DistinctKeywordAccepted) {
  EXPECT_NE(Parse("SELECT DISTINCT cid FROM cafe"), nullptr);
}

TEST_F(ParserTest, NumericLiterals) {
  RaExprPtr q = Parse("SELECT cid FROM dine WHERE year = 2015 AND month = -2");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->left()->preds()[1].constant, Value::Int(-2));
}

TEST_F(ParserTest, ErrorUnknownTable) {
  EXPECT_EQ(ParseError("SELECT x FROM nope").code(), StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorUnknownColumn) {
  EXPECT_EQ(ParseError("SELECT nope FROM cafe").code(), StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorUnknownQualifier) {
  EXPECT_EQ(ParseError("SELECT z.cid FROM cafe").code(),
            StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorMissingFrom) {
  EXPECT_EQ(ParseError("SELECT cid").code(), StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorTrailingGarbage) {
  EXPECT_EQ(ParseError("SELECT cid FROM cafe garbage garbage").code(),
            StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorUnterminatedString) {
  EXPECT_EQ(ParseError("SELECT cid FROM cafe WHERE city = 'oops").code(),
            StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorLiteralOnlyPredicate) {
  EXPECT_EQ(ParseError("SELECT cid FROM cafe WHERE 1 = 1").code(),
            StatusCode::kParseError);
}

TEST_F(ParserTest, ErrorDuplicateAlias) {
  EXPECT_EQ(ParseError("SELECT d.cid FROM dine d, cafe d").code(),
            StatusCode::kParseError);
}

TEST_F(ParserTest, RoundTripThroughPrinter) {
  RaExprPtr q = Parse(
      "SELECT cafe.cid FROM friend, dine, cafe "
      "WHERE friend.pid = 'p0' AND friend.fid = dine.pid AND "
      "dine.cid = cafe.cid AND cafe.city = 'nyc'");
  ASSERT_NE(q, nullptr);
  std::string sql = ToSqlString(q);
  Result<RaExprPtr> again = ParseQuery(sql, fx_.db.catalog());
  ASSERT_TRUE(again.ok()) << sql << "\n-> " << again.status().ToString();
  // Both must normalize and have the same output schema.
  Result<NormalizedQuery> n1 = Normalize(q, fx_.db.catalog());
  Result<NormalizedQuery> n2 = Normalize(*again, fx_.db.catalog());
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n1->OutputOf(n1->root().get()).size(),
            n2->OutputOf(n2->root().get()).size());
}

}  // namespace
}  // namespace bqe
