#include <gtest/gtest.h>

#include "baseline/eval.h"
#include "constraints/index.h"
#include "core/cov.h"
#include "core/plan_exec.h"
#include "core/qplan.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

/// Differential testing of the vectorized columnar executor: random bounded
/// plans are executed by ExecutePlan (src/exec/ batch operators,
/// key-encoded joins) and checked against two independent oracles on the
/// same plan —
///   O1: the conventional baseline evaluator (baseline/eval.cc), and
///   O2: the legacy row-at-a-time Tuple interpreter,
/// asserting identical result *sets* and identical access accounting.

struct DiffCase {
  const char* dataset;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  return std::string(info.param.dataset) + "_s" +
         std::to_string(info.param.seed);
}

class VecDifferentialTest : public ::testing::TestWithParam<DiffCase> {
 protected:
  static const GeneratedDataset& Dataset(const std::string& name) {
    static std::map<std::string, GeneratedDataset> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      Result<GeneratedDataset> ds = MakeDataset(name, 0.02, 4321);
      EXPECT_TRUE(ds.ok()) << ds.status().ToString();
      it = cache.emplace(name, std::move(*ds)).first;
    }
    return it->second;
  }

  static const IndexSet& Indices(const std::string& name) {
    static std::map<std::string, IndexSet> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      const GeneratedDataset& ds = Dataset(name);
      Result<IndexSet> set = IndexSet::Build(ds.db, ds.schema);
      EXPECT_TRUE(set.ok()) << set.status().ToString();
      it = cache.emplace(name, std::move(*set)).first;
    }
    return it->second;
  }
};

TEST_P(VecDifferentialTest, VectorizedMatchesBaselineAndRowPath) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);

  // Vary the plan shape with the seed: join depth, selection count,
  // union/difference nodes, and a non-default batch size so batch-boundary
  // splits get exercised too.
  QueryGenConfig cfg;
  cfg.seed = param.seed * 7919 + 17;
  cfg.num_sel = 2 + static_cast<int>(param.seed % 5);
  cfg.num_join = static_cast<int>(param.seed % 5);
  cfg.num_unidiff = static_cast<int>(param.seed % 3);
  Result<RaExprPtr> q = GenerateCoveredQuery(ds, cfg);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Result<NormalizedQuery> nq = Normalize(*q, ds.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, ds.schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ExecOptions opts;
  opts.batch_size = param.seed % 7 == 0 ? 1 : size_t{16} << (param.seed % 4);
  ExecStats vec_stats;
  Result<Table> vec = ExecutePlan(*plan, indices, &vec_stats, opts);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();

  // O1: the conventional evaluator over full base tables.
  Result<Table> oracle = EvaluateBaseline(*nq, ds.db, nullptr);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(Table::SameSet(*vec, *oracle))
      << "plan:\n"
      << plan->ToString() << "\nvectorized: " << vec->NumRows()
      << " rows, baseline: " << oracle->NumRows() << " rows";

  // O2: the legacy row-at-a-time interpreter on the identical plan. Result
  // sets and access accounting (probes, fetched tuples) must agree — the
  // refactor may not change *what* a bounded plan touches.
  ExecStats row_stats;
  Result<Table> row = ExecutePlanRowAtATime(*plan, indices, &row_stats);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_TRUE(Table::SameSet(*vec, *row)) << "plan:\n" << plan->ToString();
  EXPECT_EQ(vec_stats.tuples_fetched, row_stats.tuples_fetched);
  EXPECT_EQ(vec_stats.fetch_probes, row_stats.fetch_probes);
}

TEST_P(VecDifferentialTest, EmptyResultsKeepSchemaTypes) {
  const DiffCase& param = GetParam();
  const GeneratedDataset& ds = Dataset(param.dataset);
  const IndexSet& indices = Indices(param.dataset);

  QueryGenConfig cfg;
  cfg.seed = param.seed ^ 0xdead;
  cfg.num_sel = 3;
  cfg.num_join = static_cast<int>(param.seed % 3);
  Result<RaExprPtr> q = GenerateCoveredQuery(ds, cfg);
  ASSERT_TRUE(q.ok());
  Result<NormalizedQuery> nq = Normalize(*q, ds.db.catalog());
  ASSERT_TRUE(nq.ok());
  Result<CoverageReport> report = CheckCoverage(*nq, ds.schema);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->covered);
  Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
  ASSERT_TRUE(plan.ok());

  // Output column types come from plan/schema metadata, not from sniffing
  // the first result row, so they must be identical whether or not the
  // result happens to be empty — and must match the row path's derivation.
  Result<Table> vec = ExecutePlan(*plan, indices, nullptr);
  ASSERT_TRUE(vec.ok());
  Result<Table> row = ExecutePlanRowAtATime(*plan, indices, nullptr);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(vec->ColumnTypes(), row->ColumnTypes());

  Result<std::vector<std::vector<ValueType>>> types =
      DerivePlanStepTypes(*plan, indices);
  ASSERT_TRUE(types.ok());
  const std::vector<ValueType>& out_types =
      (*types)[static_cast<size_t>(plan->output)];
  std::vector<ValueType> got = vec->ColumnTypes();
  ASSERT_EQ(got.size(), out_types.size());
  for (size_t c = 0; c < got.size(); ++c) EXPECT_EQ(got[c], out_types[c]);
}

std::vector<DiffCase> AllCases() {
  std::vector<DiffCase> cases;
  for (const char* ds : {"airca", "tfacc", "mcbm"}) {
    for (uint64_t seed = 0; seed < 16; ++seed) {
      cases.push_back(DiffCase{ds, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Datasets, VecDifferentialTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace bqe
