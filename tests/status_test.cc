#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace bqe {
namespace {

/// Focused coverage for Status/Result surface that common_test.cc leaves
/// untested: ToString rendering, message round-trips through every factory,
/// copy/move semantics, and the exact Status the convenience macros
/// propagate.

TEST(StatusToStringTest, OkRendersBareOk) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status().ToString(), "OK");
}

TEST(StatusToStringTest, ErrorRendersCodeColonMessage) {
  EXPECT_EQ(Status::NotFound("relation cafe").ToString(),
            "NotFound: relation cafe");
  EXPECT_EQ(Status::ParseError("line 3: unexpected ')'").ToString(),
            "ParseError: line 3: unexpected ')'");
}

TEST(StatusToStringTest, EmptyMessageRendersCodeAlone) {
  // No trailing ": " when there is nothing to append.
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
  EXPECT_EQ(Status::Unimplemented("").ToString(), "Unimplemented");
}

TEST(StatusTest, OkHasEmptyMessage) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_TRUE(ok.message().empty());
}

TEST(StatusTest, EveryFactoryRoundTripsItsMessage) {
  const std::string msg = "context: detail (42)";
  const std::vector<Status> all = {
      Status::InvalidArgument(msg), Status::NotFound(msg),
      Status::AlreadyExists(msg),   Status::OutOfRange(msg),
      Status::FailedPrecondition(msg), Status::NotCovered(msg),
      Status::ConstraintViolation(msg), Status::ParseError(msg),
      Status::Unimplemented(msg),   Status::Internal(msg)};
  for (const Status& s : all) {
    EXPECT_FALSE(s.ok()) << s.ToString();
    EXPECT_EQ(s.message(), msg) << StatusCodeName(s.code());
    EXPECT_EQ(s.ToString(),
              std::string(StatusCodeName(s.code())) + ": " + msg);
  }
}

TEST(StatusTest, SameCodeDifferentMessageCompareUnequal) {
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_TRUE(Status::NotFound("a") == Status::NotFound("a"));
}

TEST(StatusTest, CopyPreservesCodeAndMessage) {
  Status s = Status::ConstraintViolation("fd violated on cafe.cid");
  Status copy = s;
  EXPECT_TRUE(copy == s);
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(moved.message(), "fd violated on cafe.cid");
}

TEST(ResultStatusTest, ErrorResultPreservesExactStatus) {
  Status err = Status::OutOfRange("bound 10 < rows 12");
  Result<std::string> r = err;
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status() == err);
  EXPECT_EQ(r.status().ToString(), "OutOfRange: bound 10 < rows 12");
}

TEST(ResultStatusTest, DereferenceOperatorsReachTheValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "payload");
  EXPECT_EQ(r->size(), 7u);
  *r += "!";
  EXPECT_EQ(r.value(), "payload!");
}

TEST(ResultStatusTest, ValueOrKeepsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultStatusTest, RvalueValueMovesOut) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(r).value();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

Status FailsThrough(const Status& inner) {
  BQE_RETURN_IF_ERROR(inner);
  return Status::Internal("unreachable");
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesMessageVerbatim) {
  Status out = FailsThrough(Status::NotCovered("attr cafe.zip unbounded"));
  EXPECT_EQ(out.ToString(), "NotCovered: attr cafe.zip unbounded");
  EXPECT_TRUE(FailsThrough(Status::Ok()).code() == StatusCode::kInternal);
}

Result<int> HalveEven(Result<int> in) {
  int v = 0;
  BQE_ASSIGN_OR_RETURN(v, std::move(in));
  if (v % 2 != 0) return Status::InvalidArgument(std::to_string(v) + " odd");
  return v / 2;
}

TEST(StatusMacroTest, AssignOrReturnPropagatesStatusAndValue) {
  Result<int> ok = HalveEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);
  Result<int> odd = HalveEven(9);
  ASSERT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().ToString(), "InvalidArgument: 9 odd");
  Result<int> fwd = HalveEven(Status::ParseError("bad literal"));
  ASSERT_FALSE(fwd.ok());
  EXPECT_EQ(fwd.status().ToString(), "ParseError: bad literal");
}

}  // namespace
}  // namespace bqe
