#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

using serve::DeltaResponse;
using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions() {
  EngineOptions opts;
  opts.exec_threads = 1;
  opts.row_path_threshold = 0;
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
}

/// Exact multiset equality, order-free: an IVM-refreshed table keeps its
/// surviving rows in place and appends net additions, so its row order
/// legitimately differs from a fresh execution's.
void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

TEST(QueryServiceTest, AnswersMatchDirectExecution) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  for (int i = 0; i < 6; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i));
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_NE(resp.table, nullptr);
    EXPECT_TRUE(resp.used_bounded_plan);
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectRowForRowEqual(*resp.table, direct->table,
                         "query " + std::to_string(i));
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.executed, 6u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServiceTest, CoalescesSameFingerprintRequests) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.shards = 1;         // One dispatcher: a single deterministic chunk.
  opts.batch_window = 32;  // Large enough to drain everything queued below.
  opts.adaptive_batch_window = false;  // Fixed window: exact batch counts.
  opts.start_paused = true;
  QueryService service(&engine, opts);

  RaExprPtr hot = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(service.Submit(hot));
  futures.push_back(service.Submit(FriendsNycCafesQuery(fx.cfg.Pid(1))));
  futures.push_back(service.Submit(FriendsNycCafesQuery(fx.cfg.Pid(2))));
  service.Start();

  std::vector<QueryResponse> responses;
  for (std::future<QueryResponse>& f : futures) responses.push_back(f.get());
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.table, nullptr);
  }
  // One execution for the 10-way hot group, one each for the others; the
  // hot group's followers share the leader's immutable table.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.coalesced, 9u);
  EXPECT_EQ(stats.batches, 1u);
  int hot_coalesced = 0;
  for (int i = 0; i < 10; ++i) {
    if (responses[static_cast<size_t>(i)].coalesced) ++hot_coalesced;
    EXPECT_EQ(responses[static_cast<size_t>(i)].table, responses[0].table);
  }
  EXPECT_EQ(hot_coalesced, 9);
  EXPECT_FALSE(responses[10].coalesced);
  EXPECT_FALSE(responses[11].coalesced);
}

TEST(QueryServiceTest, DeltasApplyThroughServiceAndAreVisible) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(3));
  QueryResponse before = service.Query(q);
  ASSERT_TRUE(before.status.ok());

  // GraphChurnBatch(b) adds one friend of Pid(b % pids) dining at Cid(b):
  // batch 3 targets Pid(3), and Cid(b) is "nyc" for b % 3 == 0.
  DeltaResponse applied = service.ApplyDeltas(GraphChurnBatch(fx.cfg, "qd", 3));
  ASSERT_TRUE(applied.status.ok()) << applied.status.ToString();
  EXPECT_EQ(applied.stats.inserts, 2u);

  QueryResponse after = service.Query(q);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.table->NumRows(), before.table->NumRows() + 1);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_batches, 1u);
  EXPECT_EQ(stats.deltas_applied, 2u);
  EXPECT_EQ(engine.DataEpoch(), 1u);
}

TEST(QueryServiceTest, PinnedServingAcrossDataOnlyChurnNeverReprepares) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  // Refresh off: every delta batch sweeps the result cache, so each
  // post-batch read re-executes — which is the point here: prove those
  // re-executions ride the pinned plans without a single re-prepare. (With
  // refresh on they would be cache hits and never touch a pin at all.)
  opts.result_cache_refresh = false;
  QueryService service(&engine, opts);

  std::vector<RaExprPtr> queries;
  for (int i = 0; i < 4; ++i) queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  for (const RaExprPtr& q : queries) ASSERT_TRUE(service.Query(q).status.ok());
  ServiceStats warm = service.stats();
  EXPECT_EQ(warm.repins, 4u);  // One PrepareCompiled per fingerprint, ever.

  for (int b = 0; b < 25; ++b) {
    ASSERT_TRUE(service.ApplyDeltas(GraphChurnBatch(fx.cfg, "pc", b)).status.ok());
    for (const RaExprPtr& q : queries) {
      QueryResponse r = service.Query(q);
      ASSERT_TRUE(r.status.ok());
      EXPECT_TRUE(r.pin_hit) << "batch " << b;
    }
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.engine.reprepares, 0u);
  EXPECT_EQ(stats.engine.misses, warm.engine.misses)
      << "data-only churn must not re-enter the plan cache";
  EXPECT_EQ(stats.repins, 4u);
  EXPECT_EQ(stats.coalesced, 0u);  // Serial blocking client: no batching.
  EXPECT_EQ(stats.pin_hits, 4u * 25u);
  // Refresh disabled: every batch eagerly swept the 4 entries cached since
  // the previous batch, and nothing was ever patched.
  EXPECT_EQ(stats.result_cache.evicted_stale, 4u * 25u);
  EXPECT_EQ(stats.result_cache.refreshes, 0u);
  EXPECT_EQ(stats.result_cache.invalidations, 0u)
      << "the eager sweep must beat the lazy lookup-time drop";
}

TEST(QueryServiceTest, TrySubmitLoadShedsWhenQueueFull) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.start_paused = true;  // Nothing drains: the queue genuinely fills.
  QueryService service(&engine, opts);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::future<QueryResponse> f1 = service.TrySubmit(q);
  std::future<QueryResponse> f2 = service.TrySubmit(q);
  std::future<QueryResponse> shed = service.TrySubmit(q);
  QueryResponse shed_resp = shed.get();  // Resolves immediately.
  EXPECT_FALSE(shed_resp.status.ok());
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);

  // Shutdown answers what was admitted before closing.
  service.Shutdown();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

TEST(QueryServiceTest, SubmitAfterShutdownResolvesWithError) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);
  service.Shutdown();
  QueryResponse resp = service.Query(FriendsNycCafesQuery(fx.cfg.Pid(0)));
  EXPECT_FALSE(resp.status.ok());
  DeltaResponse dresp = service.ApplyDeltas(GraphChurnBatch(fx.cfg, "sd", 0));
  EXPECT_FALSE(dresp.status.ok());
  EXPECT_EQ(service.stats().rejected, 2u);
}

// ------------------------------------------------ adaptive batch window ---

TEST(BatchWindowControllerTest, NoGapSignalReportsMaxWindow) {
  serve::BatchWindowController c(/*max_window=*/32, /*horizon_us=*/250.0);
  EXPECT_EQ(c.Window(), 32u);  // No arrivals at all.
  c.RecordArrival(1000);
  EXPECT_EQ(c.Window(), 32u);  // One arrival: still no gap sample.
}

TEST(BatchWindowControllerTest, BurstTrafficSaturatesAtMaxWindow) {
  serve::BatchWindowController c(32, 250.0);
  // Back-to-back arrivals (1µs apart): the window should cover the whole
  // cap — maximal coalescing per drain.
  uint64_t t = 0;
  for (int i = 0; i < 50; ++i) c.RecordArrival(t += 1);
  EXPECT_EQ(c.Window(), 32u);
}

TEST(BatchWindowControllerTest, SparseTrafficCollapsesToOne) {
  serve::BatchWindowController c(32, 250.0);
  // Arrivals 10ms apart: far beyond the horizon, a lone request must not
  // wait on a wide drain.
  uint64_t t = 0;
  for (int i = 0; i < 10; ++i) c.RecordArrival(t += 10'000);
  EXPECT_EQ(c.Window(), 1u);
}

TEST(BatchWindowControllerTest, SteadyRateTracksHorizonOverGap) {
  serve::BatchWindowController c(64, 250.0);
  // 50µs steady gaps -> the EWMA converges to 50 and the window to
  // horizon / gap = 5.
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 50);
  EXPECT_EQ(c.Window(), 5u);
}

TEST(BatchWindowControllerTest, DrainTimeWidensTheHorizon) {
  serve::BatchWindowController c(64, 250.0);
  // 500µs gaps against the 250µs minimum horizon: window collapses to 1...
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 500);
  EXPECT_EQ(c.Window(), 1u);
  // ...but once chunks are observed to take 8ms to process, the batching
  // law says a drain should cover 8ms of arrivals: 8000 / 500 = 16.
  for (int i = 0; i < 100; ++i) c.RecordDrain(8000.0);
  EXPECT_EQ(c.Window(), 16u);
}

TEST(BatchWindowControllerTest, ReCentersAfterWorkloadShift) {
  serve::BatchWindowController c(32, 250.0);
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 10'000);  // Sparse.
  EXPECT_EQ(c.Window(), 1u);
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 2);  // Burst begins.
  EXPECT_EQ(c.Window(), 32u);  // EWMA re-centered within the burst.
}

TEST(QueryServiceTest, AdaptiveWindowSurfacesInStatsAndStaysCorrect) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.batch_window = 16;  // The adaptive ceiling.
  QueryService service(&engine, opts);  // adaptive_batch_window defaults on.

  for (int i = 0; i < 8; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i % 4));
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectRowForRowEqual(*resp.table, direct->table,
                         "adaptive query " + std::to_string(i));
  }
  ServiceStats stats = service.stats();
  // 4 distinct fingerprints asked twice each: the second round is absorbed
  // by the result cache at admission (serial client, no deltas), so only
  // the first round was ever admitted.
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.result_hits_admission, 4u);
  EXPECT_EQ(stats.admitted + stats.result_hits_admission, 8u);
  EXPECT_GE(stats.batch_window, 1u);
  EXPECT_LE(stats.batch_window, 16u);
}

// ------------------------------------------------------ result cache ---

TEST(QueryServiceTest, ResultCacheAndCoalescingInterplay) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.shards = 1;
  opts.batch_window = 32;
  opts.adaptive_batch_window = false;
  opts.start_paused = true;
  QueryService service(&engine, opts);

  // Cold cache: six same-fingerprint submissions all queue (no admission
  // hit), then drain as ONE chunk — one execution, five coalesced.
  RaExprPtr hot = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.Submit(hot));
  EXPECT_EQ(service.stats().result_hits_admission, 0u);
  service.Start();
  std::vector<QueryResponse> first;
  for (std::future<QueryResponse>& f : futures) first.push_back(f.get());
  for (const QueryResponse& r : first) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.result_cache_hit);
    EXPECT_EQ(r.table, first[0].table);  // Shared immutable table.
  }

  // Warm cache, no delta since: five more submissions resolve at admission
  // — never admitted, never executed, not coalesced — and share the very
  // table the leader execution inserted.
  for (int i = 0; i < 5; ++i) {
    QueryResponse r = service.Query(hot);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.result_cache_hit);
    EXPECT_FALSE(r.coalesced);
    EXPECT_EQ(r.table, first[0].table);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.coalesced, 5u);
  EXPECT_EQ(stats.result_hits_admission, 5u);
  EXPECT_EQ(stats.result_cache.insertions, 1u);
  EXPECT_EQ(stats.result_cache.hits, 5u);
  EXPECT_EQ(stats.result_cache.entries, 1u);
  EXPECT_GT(stats.result_cache.bytes, 0u);
}

TEST(QueryServiceTest, ResultCacheWindowHitSkipsDuplicateExecution) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.shards = 1;
  opts.batch_window = 1;  // Every request is its own chunk.
  opts.adaptive_batch_window = false;
  opts.start_paused = true;
  QueryService service(&engine, opts);

  // Both requests are admitted while the cache is cold (paused service), so
  // neither resolves at admission; the first chunk executes and inserts,
  // and the second chunk's dispatcher finds the entry at dispatch time.
  RaExprPtr hot = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::future<QueryResponse> f1 = service.Submit(hot);
  std::future<QueryResponse> f2 = service.Submit(hot);
  service.Start();
  QueryResponse r1 = f1.get();
  QueryResponse r2 = f2.get();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_FALSE(r1.result_cache_hit);
  EXPECT_TRUE(r2.result_cache_hit);
  EXPECT_EQ(r1.table, r2.table);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.result_hits_window, 1u);
  EXPECT_EQ(stats.result_hits_admission, 0u);
}

TEST(QueryServiceTest, DeltaBatchRefreshesCachedResultInPlace) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(3));
  QueryResponse miss = service.Query(q);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.result_cache_hit);
  QueryResponse hit = service.Query(q);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.result_cache_hit);
  EXPECT_FALSE(hit.result_refreshed);
  EXPECT_EQ(hit.table, miss.table);

  // Handles are reuse-promoted: the first execution cached without one, so
  // batch 2 (touching Pid(2), not this query's answer) sweeps the entry
  // and the next read re-executes — *that* execution resolves its pin from
  // the map and retains the maintenance handle.
  ASSERT_TRUE(service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rc", 2)).status.ok());
  QueryResponse repop = service.Query(q);
  ASSERT_TRUE(repop.status.ok());
  EXPECT_FALSE(repop.result_cache_hit);
  EXPECT_EQ(repop.table->NumRows(), miss.table->NumRows());

  // Batch 3 adds a new nyc dining friend of Pid(3): the data epoch moves,
  // and IVM patches the cached entry inside the batch's own gate hold —
  // the next read is a *refreshed cache hit* already carrying the new row,
  // with no re-execution anywhere. (Before IVM this was an invalidation
  // plus a full recompute.)
  ASSERT_TRUE(service.ApplyDeltas(GraphChurnBatch(fx.cfg, "rc", 3)).status.ok());
  QueryResponse after = service.Query(q);
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.result_cache_hit);
  EXPECT_TRUE(after.result_refreshed);
  ASSERT_NE(after.table, nullptr);
  EXPECT_EQ(after.table->NumRows(), miss.table->NumRows() + 1);
  Result<ExecuteResult> direct = engine.Execute(q);
  ASSERT_TRUE(direct.ok());
  ExpectSameBag(*after.table, direct->table, "refreshed hit vs recompute");

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executed, 2u);  // The populate + the promoting re-execute.
  EXPECT_EQ(stats.result_hits_refreshed, 1u);
  EXPECT_EQ(stats.result_cache.refreshes, 1u);
  EXPECT_EQ(stats.result_cache.refresh_fallbacks, 0u);
  EXPECT_GE(stats.result_cache.refreshed_rows, 1u);
  EXPECT_EQ(stats.result_cache.evicted_stale, 1u);  // The unpromoted entry.
  EXPECT_EQ(stats.result_cache.invalidations, 0u);
  EXPECT_EQ(stats.data_epoch, 2u);
}

TEST(QueryServiceTest, SubtrahendDeleteFallsBackToRecompute) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  // May cafes MINUS june cafes: the june branch is the subtrahend.
  RaExprPtr q = workload::FriendsMayNotJuneCafesQuery(fx.cfg.Pid(0));
  QueryResponse base = service.Query(q);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  EXPECT_TRUE(base.used_bounded_plan);
  // Promote the entry: churn Pid(1) (not this query's answer) so the swept
  // fingerprint re-executes and its second execution retains a handle.
  ASSERT_TRUE(
      service.ApplyDeltas(GraphChurnBatch(fx.cfg, "sd", 1)).status.ok());
  QueryResponse promoted = service.Query(q);
  ASSERT_TRUE(promoted.status.ok());
  EXPECT_EQ(promoted.table->NumRows(), base.table->NumRows());

  // A june *insert* for friend f0 at nyc cafe c0 (which IS in the may
  // answer) is a subtrahend plus: maintainable, and the refreshed hit has
  // c0 suppressed.
  ASSERT_TRUE(service.ApplyDeltas(workload::GraphChurnJuneBatch(fx.cfg, 0))
                  .status.ok());
  QueryResponse suppressed = service.Query(q);
  ASSERT_TRUE(suppressed.status.ok());
  EXPECT_TRUE(suppressed.result_cache_hit);
  EXPECT_TRUE(suppressed.result_refreshed);
  EXPECT_EQ(suppressed.table->NumRows() + 1, base.table->NumRows());
  {
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectSameBag(*suppressed.table, direct->table, "after june insert");
  }

  // Batch 4 *deletes* batch 0's june visit — a minus on the subtrahend can
  // resurrect suppressed rows only a recompute can find, so this is the
  // delta shape refresh must refuse: the entry drops, the next read
  // re-executes, and c0 is back.
  ASSERT_TRUE(service.ApplyDeltas(workload::GraphChurnJuneBatch(fx.cfg, 4))
                  .status.ok());
  QueryResponse recomputed = service.Query(q);
  ASSERT_TRUE(recomputed.status.ok());
  EXPECT_FALSE(recomputed.result_cache_hit);
  EXPECT_EQ(recomputed.table->NumRows(), base.table->NumRows());
  {
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectSameBag(*recomputed.table, direct->table, "after june delete");
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.result_cache.refreshes, 1u);
  EXPECT_EQ(stats.result_cache.refresh_fallbacks, 1u);
  // The populate, the promoting re-execute, and the fallback recompute.
  EXPECT_EQ(stats.executed, 3u);
}

TEST(QueryServiceTest, OversizedMaintenanceHandleIsDeclinedOnce) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  // The handle for this 3-relation join view retains ~0.5 MiB of join
  // bags; a 1 MiB cache makes the size bound (capacity / 8 = 128 KiB)
  // refuse it while the few-hundred-byte result itself caches fine.
  opts.result_cache_bytes = 1u << 20;
  QueryService service(&engine, opts);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(3));
  ASSERT_TRUE(service.Query(q).status.ok());  // Populate (no reuse yet).
  ASSERT_TRUE(service.ApplyDeltas(GraphChurnBatch(fx.cfg, "ov", 1)).status.ok());
  ASSERT_TRUE(service.Query(q).status.ok());  // Promotes, Builds, declines.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.maint_declined, 1u);

  // Declined for good: the entry serves hits between batches but is swept
  // (never refreshed) across them, and no second Build is ever attempted.
  for (int b = 2; b < 5; ++b) {
    ASSERT_TRUE(
        service.ApplyDeltas(GraphChurnBatch(fx.cfg, "ov", b)).status.ok());
    QueryResponse r = service.Query(q);
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.result_cache_hit) << "batch " << b;
    QueryResponse again = service.Query(q);
    ASSERT_TRUE(again.status.ok());
    EXPECT_TRUE(again.result_cache_hit) << "batch " << b;
    EXPECT_FALSE(again.result_refreshed) << "batch " << b;
  }
  stats = service.stats();
  EXPECT_EQ(stats.maint_declined, 1u);
  EXPECT_EQ(stats.result_cache.refreshes, 0u);
  EXPECT_EQ(stats.result_cache.refresh_fallbacks, 0u);
}

TEST(QueryServiceTest, RequestAccountingStaysFiveWayExactUnderRefresh) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  constexpr int kWarm = 4;
  constexpr int kRounds = 10;
  std::vector<RaExprPtr> queries;
  for (int i = 0; i < kWarm; ++i) {
    queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
    ASSERT_TRUE(service.Query(queries.back()).status.ok());
  }
  for (int b = 0; b < kRounds; ++b) {
    ASSERT_TRUE(
        service.ApplyDeltas(GraphChurnBatch(fx.cfg, "fw", b)).status.ok());
    for (const RaExprPtr& q : queries) {
      QueryResponse r = service.Query(q);
      ASSERT_TRUE(r.status.ok());
      for (int rep = 0; rep < 1; ++rep) {
        QueryResponse r2 = service.Query(q);
        ASSERT_TRUE(r2.status.ok());
      }
    }
  }

  // Regression for the accounting identity after IVM split the hit
  // counters three ways: every request resolves as exactly one of leader
  // execution, coalesced follower, plain admission hit, window hit, or
  // refreshed hit — nothing double-counts, nothing leaks.
  ServiceStats s = service.stats();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kWarm) + 2ull * kWarm * kRounds;
  EXPECT_EQ(s.executed + s.coalesced + s.result_hits_admission +
                s.result_hits_window + s.result_hits_refreshed,
            kTotal);
  EXPECT_EQ(s.result_cache.hits, s.result_hits_admission +
                                     s.result_hits_window +
                                     s.result_hits_refreshed);
  EXPECT_GT(s.result_hits_refreshed, 0u);
  // Serial client + maintainable plans: the warmup populates without
  // handles (no reuse yet), round 0 re-executes each fingerprint once —
  // promoting it — and from round 1 on nothing re-executes.
  EXPECT_EQ(s.executed, 2ull * kWarm);
  EXPECT_EQ(s.result_cache.refreshes,
            static_cast<uint64_t>(kWarm) * (kRounds - 1));
  EXPECT_EQ(s.result_cache.refresh_fallbacks, 0u);
}

// -------------------------------------------- one-pass stats snapshot ---

TEST(QueryServiceTest, StatsSnapshotStaysConsistentUnderConcurrentDeltas) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  // Regression for the old stats() implementation, which read the engine
  // counters detached from the service counters: polling during a delta
  // storm could observe the engine's epoch bump without the corresponding
  // delta_batches increment (or vice versa). With the one-pass snapshot
  // (read gate held, counters bumped inside the write hold) the identities
  // below hold at EVERY observation, not just at quiescence.
  constexpr int kBatches = 60;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      DeltaResponse r = service.ApplyDeltas(GraphChurnBatch(fx.cfg, "st", b));
      ASSERT_TRUE(r.status.ok());
    }
    done.store(true);
  });
  while (!done.load()) {
    ServiceStats s = service.stats();
    // Every GraphChurnBatch applies exactly two inserts and never grows a
    // bound, so these are exact at any instant.
    EXPECT_EQ(s.data_epoch, s.delta_batches);
    EXPECT_EQ(s.deltas_applied, 2 * s.delta_batches);
    EXPECT_EQ(s.schema_epoch, 1u);
  }
  writer.join();

  ServiceStats end = service.stats();
  EXPECT_EQ(end.delta_batches, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(end.data_epoch, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(end.deltas_applied, 2u * kBatches);
}

TEST(QueryServiceTest, NonCoveredQueryFallsBackThroughService) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  // cafe is only accessible by cid; selecting on city is not covered and
  // must reach the baseline evaluator through the service.
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "city"), Value::Str("nyc"))}),
      {A("cafe", "cid")});
  QueryResponse resp = service.Query(q);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  Result<ExecuteResult> direct = engine.Execute(q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(resp.used_bounded_plan, direct->used_bounded_plan);
  EXPECT_TRUE(Table::SameSet(*resp.table, direct->table));
}

}  // namespace
}  // namespace bqe
