#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

using serve::DeltaResponse;
using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions() {
  EngineOptions opts;
  opts.exec_threads = 1;
  opts.row_path_threshold = 0;
  return opts;
}

void ExpectRowForRowEqual(const Table& got, const Table& want,
                          const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  for (size_t r = 0; r < got.rows().size(); ++r) {
    ASSERT_EQ(got.rows()[r], want.rows()[r]) << context << " row " << r;
  }
}

TEST(QueryServiceTest, AnswersMatchDirectExecution) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  for (int i = 0; i < 6; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i));
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_NE(resp.table, nullptr);
    EXPECT_TRUE(resp.used_bounded_plan);
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectRowForRowEqual(*resp.table, direct->table,
                         "query " + std::to_string(i));
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.executed, 6u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServiceTest, CoalescesSameFingerprintRequests) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.shards = 1;         // One dispatcher: a single deterministic chunk.
  opts.batch_window = 32;  // Large enough to drain everything queued below.
  opts.adaptive_batch_window = false;  // Fixed window: exact batch counts.
  opts.start_paused = true;
  QueryService service(&engine, opts);

  RaExprPtr hot = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(service.Submit(hot));
  futures.push_back(service.Submit(FriendsNycCafesQuery(fx.cfg.Pid(1))));
  futures.push_back(service.Submit(FriendsNycCafesQuery(fx.cfg.Pid(2))));
  service.Start();

  std::vector<QueryResponse> responses;
  for (std::future<QueryResponse>& f : futures) responses.push_back(f.get());
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.table, nullptr);
  }
  // One execution for the 10-way hot group, one each for the others; the
  // hot group's followers share the leader's immutable table.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.coalesced, 9u);
  EXPECT_EQ(stats.batches, 1u);
  int hot_coalesced = 0;
  for (int i = 0; i < 10; ++i) {
    if (responses[static_cast<size_t>(i)].coalesced) ++hot_coalesced;
    EXPECT_EQ(responses[static_cast<size_t>(i)].table, responses[0].table);
  }
  EXPECT_EQ(hot_coalesced, 9);
  EXPECT_FALSE(responses[10].coalesced);
  EXPECT_FALSE(responses[11].coalesced);
}

TEST(QueryServiceTest, DeltasApplyThroughServiceAndAreVisible) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(3));
  QueryResponse before = service.Query(q);
  ASSERT_TRUE(before.status.ok());

  // GraphChurnBatch(b) adds one friend of Pid(b % pids) dining at Cid(b):
  // batch 3 targets Pid(3), and Cid(b) is "nyc" for b % 3 == 0.
  DeltaResponse applied = service.ApplyDeltas(GraphChurnBatch(fx.cfg, "qd", 3));
  ASSERT_TRUE(applied.status.ok()) << applied.status.ToString();
  EXPECT_EQ(applied.stats.inserts, 2u);

  QueryResponse after = service.Query(q);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.table->NumRows(), before.table->NumRows() + 1);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_batches, 1u);
  EXPECT_EQ(stats.deltas_applied, 2u);
  EXPECT_EQ(engine.DataEpoch(), 1u);
}

TEST(QueryServiceTest, PinnedServingAcrossDataOnlyChurnNeverReprepares) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  std::vector<RaExprPtr> queries;
  for (int i = 0; i < 4; ++i) queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  for (const RaExprPtr& q : queries) ASSERT_TRUE(service.Query(q).status.ok());
  ServiceStats warm = service.stats();
  EXPECT_EQ(warm.repins, 4u);  // One PrepareCompiled per fingerprint, ever.

  for (int b = 0; b < 25; ++b) {
    ASSERT_TRUE(service.ApplyDeltas(GraphChurnBatch(fx.cfg, "pc", b)).status.ok());
    for (const RaExprPtr& q : queries) {
      QueryResponse r = service.Query(q);
      ASSERT_TRUE(r.status.ok());
      EXPECT_TRUE(r.pin_hit) << "batch " << b;
    }
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.engine.reprepares, 0u);
  EXPECT_EQ(stats.engine.misses, warm.engine.misses)
      << "data-only churn must not re-enter the plan cache";
  EXPECT_EQ(stats.repins, 4u);
  EXPECT_EQ(stats.coalesced, 0u);  // Serial blocking client: no batching.
  EXPECT_EQ(stats.pin_hits, 4u * 25u);
}

TEST(QueryServiceTest, TrySubmitLoadShedsWhenQueueFull) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.start_paused = true;  // Nothing drains: the queue genuinely fills.
  QueryService service(&engine, opts);

  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(0));
  std::future<QueryResponse> f1 = service.TrySubmit(q);
  std::future<QueryResponse> f2 = service.TrySubmit(q);
  std::future<QueryResponse> shed = service.TrySubmit(q);
  QueryResponse shed_resp = shed.get();  // Resolves immediately.
  EXPECT_FALSE(shed_resp.status.ok());
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);

  // Shutdown answers what was admitted before closing.
  service.Shutdown();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

TEST(QueryServiceTest, SubmitAfterShutdownResolvesWithError) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);
  service.Shutdown();
  QueryResponse resp = service.Query(FriendsNycCafesQuery(fx.cfg.Pid(0)));
  EXPECT_FALSE(resp.status.ok());
  DeltaResponse dresp = service.ApplyDeltas(GraphChurnBatch(fx.cfg, "sd", 0));
  EXPECT_FALSE(dresp.status.ok());
  EXPECT_EQ(service.stats().rejected, 2u);
}

// ------------------------------------------------ adaptive batch window ---

TEST(BatchWindowControllerTest, NoGapSignalReportsMaxWindow) {
  serve::BatchWindowController c(/*max_window=*/32, /*horizon_us=*/250.0);
  EXPECT_EQ(c.Window(), 32u);  // No arrivals at all.
  c.RecordArrival(1000);
  EXPECT_EQ(c.Window(), 32u);  // One arrival: still no gap sample.
}

TEST(BatchWindowControllerTest, BurstTrafficSaturatesAtMaxWindow) {
  serve::BatchWindowController c(32, 250.0);
  // Back-to-back arrivals (1µs apart): the window should cover the whole
  // cap — maximal coalescing per drain.
  uint64_t t = 0;
  for (int i = 0; i < 50; ++i) c.RecordArrival(t += 1);
  EXPECT_EQ(c.Window(), 32u);
}

TEST(BatchWindowControllerTest, SparseTrafficCollapsesToOne) {
  serve::BatchWindowController c(32, 250.0);
  // Arrivals 10ms apart: far beyond the horizon, a lone request must not
  // wait on a wide drain.
  uint64_t t = 0;
  for (int i = 0; i < 10; ++i) c.RecordArrival(t += 10'000);
  EXPECT_EQ(c.Window(), 1u);
}

TEST(BatchWindowControllerTest, SteadyRateTracksHorizonOverGap) {
  serve::BatchWindowController c(64, 250.0);
  // 50µs steady gaps -> the EWMA converges to 50 and the window to
  // horizon / gap = 5.
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 50);
  EXPECT_EQ(c.Window(), 5u);
}

TEST(BatchWindowControllerTest, DrainTimeWidensTheHorizon) {
  serve::BatchWindowController c(64, 250.0);
  // 500µs gaps against the 250µs minimum horizon: window collapses to 1...
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 500);
  EXPECT_EQ(c.Window(), 1u);
  // ...but once chunks are observed to take 8ms to process, the batching
  // law says a drain should cover 8ms of arrivals: 8000 / 500 = 16.
  for (int i = 0; i < 100; ++i) c.RecordDrain(8000.0);
  EXPECT_EQ(c.Window(), 16u);
}

TEST(BatchWindowControllerTest, ReCentersAfterWorkloadShift) {
  serve::BatchWindowController c(32, 250.0);
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 10'000);  // Sparse.
  EXPECT_EQ(c.Window(), 1u);
  for (int i = 0; i < 100; ++i) c.RecordArrival(t += 2);  // Burst begins.
  EXPECT_EQ(c.Window(), 32u);  // EWMA re-centered within the burst.
}

TEST(QueryServiceTest, AdaptiveWindowSurfacesInStatsAndStaysCorrect) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  ServiceOptions opts;
  opts.batch_window = 16;  // The adaptive ceiling.
  QueryService service(&engine, opts);  // adaptive_batch_window defaults on.

  for (int i = 0; i < 8; ++i) {
    RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(i % 4));
    QueryResponse resp = service.Query(q);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    Result<ExecuteResult> direct = engine.Execute(q);
    ASSERT_TRUE(direct.ok());
    ExpectRowForRowEqual(*resp.table, direct->table,
                         "adaptive query " + std::to_string(i));
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_GE(stats.batch_window, 1u);
  EXPECT_LE(stats.batch_window, 16u);
}

TEST(QueryServiceTest, NonCoveredQueryFallsBackThroughService) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions());
  ASSERT_TRUE(engine.BuildIndices().ok());
  QueryService service(&engine);

  // cafe is only accessible by cid; selecting on city is not covered and
  // must reach the baseline evaluator through the service.
  RaExprPtr q = Project(
      Select(Rel("cafe"), {EqC(A("cafe", "city"), Value::Str("nyc"))}),
      {A("cafe", "cid")});
  QueryResponse resp = service.Query(q);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  Result<ExecuteResult> direct = engine.Execute(q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(resp.used_bounded_plan, direct->used_bounded_plan);
  EXPECT_TRUE(Table::SameSet(*resp.table, direct->table));
}

}  // namespace
}  // namespace bqe
