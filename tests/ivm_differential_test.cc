#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "baseline/eval.h"
#include "common/rw_gate.h"
#include "constraints/index.h"
#include "core/engine.h"
#include "exec/ivm.h"
#include "ra/normalize.h"
#include "workload/datasets.h"
#include "workload/graph_churn.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

/// Differential testing of incremental view maintenance: a maintained
/// result — patched through PlanMaintenance::Refresh() across applied
/// delta batches — must equal a from-scratch re-execution of the same
/// compiled plan as an exact bag, for every case of the same generated
/// 48-query corpus the vectorized executor is differentially tested on
/// (vec_differential_test.cc), under batches that *delete* existing base
/// rows and then re-insert them (so bounds never grow and every delta
/// shape, including minus deltas through fetch/join/dedupe/difference,
/// is exercised). Where a plan is legitimately not maintainable for a
/// batch (deletions reaching a difference subtrahend), Refresh() must say
/// so — never return a wrong table — and a rebuilt handle must resume
/// maintaining the recomputed result.

using workload::FriendsMayNotJuneCafesQuery;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::GraphChurnJuneBatch;
using workload::GraphChurnMixedBatch;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

/// Exact multiset equality, order-free: a refreshed table keeps surviving
/// rows in place and appends net additions, so its row order legitimately
/// differs from a fresh execution's.
void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

/// Build() and Refresh() carry REQUIRES[_SHARED](gate) contracts (the
/// serving layer calls them under its writer-priority gate), so even these
/// single-threaded tests must hold a gate to call them. These helpers
/// acquire a test-local gate around each call; exclusive ownership
/// satisfies both the shared (Build) and exclusive (Refresh) contracts.
std::unique_ptr<PlanMaintenance> BuildMaintained(
    WriterPriorityGate* gate, std::shared_ptr<const PhysicalPlan> plan,
    const Table& result) {
  WriterGateLock wl(gate);
  return PlanMaintenance::Build(*gate, std::move(plan), result);
}

RefreshOutcome RefreshMaintained(WriterPriorityGate* gate,
                                 PlanMaintenance* maint,
                                 const std::vector<Delta>& deltas,
                                 const std::shared_ptr<const Table>& current,
                                 std::shared_ptr<const Table>* patched,
                                 RefreshStats* stats) {
  WriterGateLock wl(gate);
  return maint->Refresh(*gate, deltas, current, patched, stats);
}

struct DiffCase {
  const char* dataset;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  return std::string(info.param.dataset) + "_s" +
         std::to_string(info.param.seed);
}

class IvmDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(IvmDifferentialTest, MaintainedResultMatchesRecompute) {
  const DiffCase& param = GetParam();
  // Fresh dataset per case: Apply() mutates the database in place, so the
  // shared-cache pattern of vec_differential_test.cc would leak deltas
  // across cases.
  Result<GeneratedDataset> ds = MakeDataset(param.dataset, 0.02, 4321);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  BoundedEngine engine(&ds->db, ds->schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  // The exact corpus of vec_differential_test.cc: same seeding, same shape
  // knobs, so the 48 plans IVM is proven on are the 48 plans the executor
  // itself is proven on.
  QueryGenConfig cfg;
  cfg.seed = param.seed * 7919 + 17;
  cfg.num_sel = 2 + static_cast<int>(param.seed % 5);
  cfg.num_join = static_cast<int>(param.seed % 5);
  cfg.num_unidiff = static_cast<int>(param.seed % 3);
  Result<RaExprPtr> q = GenerateCoveredQuery(*ds, cfg);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Result<std::shared_ptr<const PreparedQuery>> pq = engine.PrepareCompiled(*q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE((*pq)->info.covered);
  ASSERT_NE((*pq)->physical, nullptr);

  Result<ExecuteResult> first = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::shared_ptr<const Table> cur =
      std::make_shared<const Table>(std::move(first->table));

  WriterPriorityGate gate;
  std::unique_ptr<PlanMaintenance> maint =
      BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr) << "build-time bag verification failed";
  EXPECT_GT(maint->ApproxBytes(), 0u);

  // The plan's read set: only deltas on these relations can change the
  // result, and Refresh() classifies by exactly this set.
  std::unordered_set<std::string> read_rels;
  for (const AccessIndex* ix : (*pq)->physical->fetch_indices()) {
    read_rels.insert(ix->constraint().rel);
  }

  // Re-execute the (still pinned, still valid) plan from scratch against
  // the live post-batch indices and compare as an exact bag. On a
  // legitimate fallback, recompute and rebuild the handle — correctness is
  // "never a wrong table", not "never a fallback".
  size_t fallbacks = 0;
  auto check_batch = [&](const std::vector<Delta>& batch,
                         const std::string& ctx) {
    Result<MaintenanceStats> st = engine.Apply(batch);
    ASSERT_TRUE(st.ok()) << ctx << ": " << st.status().ToString();
    bool touched_read_set = false;
    for (const Delta& d : batch) touched_read_set |= read_rels.count(d.rel) > 0;
    std::shared_ptr<const Table> patched;
    RefreshStats rs;
    RefreshOutcome out =
        RefreshMaintained(&gate, maint.get(), batch, cur, &patched, &rs);
    Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
    ASSERT_TRUE(fresh.ok()) << ctx;
    if (out == RefreshOutcome::kRefreshed) {
      ASSERT_NE(patched, nullptr) << ctx;
      ExpectSameBag(*patched, fresh->table, ctx);
      if (touched_read_set) {
        EXPECT_GE(rs.deltas_relevant, 1u) << ctx;
      } else {
        EXPECT_EQ(patched.get(), cur.get()) << ctx;
      }
      cur = patched;
    } else {
      ++fallbacks;
      cur = std::make_shared<const Table>(std::move(fresh->table));
      maint = BuildMaintained(&gate, (*pq)->physical, *cur);
      ASSERT_NE(maint, nullptr) << ctx << ": rebuild after fallback failed";
    }
  };

  for (int r = 0; r < 3; ++r) {
    // Delete up to two existing rows from every base relation (read set or
    // not — irrelevant deltas must classify out), then re-insert the same
    // rows, so the instance returns to its pre-round state and no bound
    // ever grows. Both directions run through Apply() + Refresh().
    std::vector<Delta> deletes, reinserts;
    for (const auto& [rel, size] : ds->db.TableSizes()) {
      const Table* t = ds->db.Get(rel);
      ASSERT_NE(t, nullptr);
      size_t n = t->NumRows();
      if (n == 0) continue;
      size_t i1 = (static_cast<size_t>(r) * 7) % n;
      size_t i2 = (static_cast<size_t>(r) * 7 + 3) % n;
      deletes.push_back(Delta::Delete(rel, t->rows()[i1]));
      reinserts.push_back(Delta::Insert(rel, t->rows()[i1]));
      if (i2 != i1) {
        deletes.push_back(Delta::Delete(rel, t->rows()[i2]));
        reinserts.push_back(Delta::Insert(rel, t->rows()[i2]));
      }
    }
    ASSERT_FALSE(deletes.empty());
    check_batch(deletes, "round " + std::to_string(r) + " deletes");
    check_batch(reinserts, "round " + std::to_string(r) + " reinserts");
  }

  // A delta entirely outside the read set must be a no-op refresh that
  // hands back the *same* table object (re-keyed, not copied).
  std::string outside;
  for (const auto& [rel, size] : ds->db.TableSizes()) {
    if (size > 0 && read_rels.count(rel) == 0) outside = rel;
  }
  if (!outside.empty()) {
    Tuple row = ds->db.Get(outside)->rows()[0];
    std::vector<Delta> batch = {Delta::Delete(outside, row)};
    ASSERT_TRUE(engine.Apply(batch).ok());
    std::shared_ptr<const Table> patched;
    RefreshStats rs;
    ASSERT_EQ(RefreshMaintained(&gate, maint.get(), batch, cur, &patched, &rs),
              RefreshOutcome::kRefreshed);
    EXPECT_EQ(patched.get(), cur.get());
    EXPECT_EQ(rs.deltas_relevant, 0u);
    EXPECT_EQ(rs.rows_added + rs.rows_removed, 0u);
    ASSERT_TRUE(engine.Apply({Delta::Insert(outside, row)}).ok());
  }

  // Fallbacks are possible only for plans with a difference op, and only
  // when a deletion reaches its subtrahend.
  if (cfg.num_unidiff == 0) {
    EXPECT_EQ(fallbacks, 0u);
  }
}

std::vector<DiffCase> AllCases() {
  std::vector<DiffCase> cases;
  for (const char* ds : {"airca", "tfacc", "mcbm"}) {
    for (uint64_t seed = 0; seed < 16; ++seed) {
      cases.push_back(DiffCase{ds, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Datasets, IvmDifferentialTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

/// Long mixed insert+delete churn through fetch and join ops: every batch
/// must stay maintainable, every patched table must equal a fresh
/// re-execution as an exact bag AND the conventional baseline evaluator
/// as a set (the fully independent oracle that never saw a plan).
TEST(IvmGraphChurnDifferentialTest, MixedChurnStaysMaintainableAndExact) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());
  WriterPriorityGate gate;

  constexpr int kQueries = 3;
  constexpr int kBatches = 24;  // Lag 8: deletions flow from batch 8 on.

  struct Maintained {
    RaExprPtr query;
    NormalizedQuery normalized;
    std::shared_ptr<const PreparedQuery> prepared;
    std::shared_ptr<const Table> cur;
    std::unique_ptr<PlanMaintenance> maint;
  };
  std::vector<Maintained> views;
  for (int i = 0; i < kQueries; ++i) {
    Maintained v;
    v.query = FriendsNycCafesQuery(fx.cfg.Pid(i));
    Result<NormalizedQuery> nq = Normalize(v.query, fx.db.catalog());
    ASSERT_TRUE(nq.ok());
    v.normalized = std::move(*nq);
    Result<std::shared_ptr<const PreparedQuery>> pq =
        engine.PrepareCompiled(v.query);
    ASSERT_TRUE(pq.ok());
    ASSERT_TRUE((*pq)->info.covered);
    v.prepared = *pq;
    Result<ExecuteResult> first = engine.ExecutePrepared(*v.prepared);
    ASSERT_TRUE(first.ok());
    v.cur = std::make_shared<const Table>(std::move(first->table));
    v.maint = BuildMaintained(&gate, v.prepared->physical, *v.cur);
    ASSERT_NE(v.maint, nullptr);
    views.push_back(std::move(v));
  }

  for (int b = 0; b < kBatches; ++b) {
    std::vector<Delta> batch = GraphChurnMixedBatch(fx.cfg, "ivmdiff", b);
    ASSERT_TRUE(engine.Apply(batch).ok()) << "batch " << b;
    for (int i = 0; i < kQueries; ++i) {
      std::string ctx =
          "batch " + std::to_string(b) + " view " + std::to_string(i);
      Maintained& v = views[static_cast<size_t>(i)];
      std::shared_ptr<const Table> patched;
      RefreshStats rs;
      ASSERT_EQ(RefreshMaintained(&gate, v.maint.get(), batch, v.cur, &patched,
                                  &rs),
                RefreshOutcome::kRefreshed)
          << ctx << ": insert+delete churn through fetch/join must stay "
                    "maintainable";
      EXPECT_GE(rs.deltas_relevant, 1u) << ctx;
      Result<ExecuteResult> fresh = engine.ExecutePrepared(*v.prepared);
      ASSERT_TRUE(fresh.ok()) << ctx;
      ExpectSameBag(*patched, fresh->table, ctx);
      Result<Table> oracle = EvaluateBaseline(v.normalized, fx.db, nullptr);
      ASSERT_TRUE(oracle.ok()) << ctx;
      EXPECT_TRUE(Table::SameSet(*patched, *oracle)) << ctx;
      v.cur = patched;
    }
  }
  // The mixed churn above recycles cafes the views already list (the
  // projection is set-semantic), so its patches may legitimately be
  // no-ops. Prove the patch path actually moves rows both ways: give
  // Pid(0) a new friend dining at a nyc cafe provably *absent* from the
  // view, then take the pair back.
  Maintained& v0 = views[0];
  std::string free_cid;
  for (int m = 0; m < 100 && free_cid.empty(); m += 3) {  // m % 3 == 0: nyc.
    Value cand = Value::Str("c" + std::to_string(m));
    bool present = false;
    for (const Tuple& row : v0.cur->rows()) present |= row[0] == cand;
    if (!present) free_cid = "c" + std::to_string(m);
  }
  ASSERT_FALSE(free_cid.empty()) << "every nyc cafe already in the view";
  auto S = [](const std::string& s) { return Value::Str(s); };
  std::vector<Delta> add = {
      Delta::Insert("friend", {S(fx.cfg.Pid(0)), S("ivmdiff-new")}),
      Delta::Insert("dine",
                    {S("ivmdiff-new"), S(free_cid), Value::Int(5),
                     Value::Int(2015)}),
  };
  ASSERT_TRUE(engine.Apply(add).ok());
  std::shared_ptr<const Table> patched;
  RefreshStats rs;
  ASSERT_EQ(RefreshMaintained(&gate, v0.maint.get(), add, v0.cur, &patched,
                              &rs),
            RefreshOutcome::kRefreshed);
  EXPECT_GE(rs.rows_added, 1u);
  EXPECT_EQ(patched->NumRows(), v0.cur->NumRows() + 1);
  Result<ExecuteResult> fresh = engine.ExecutePrepared(*v0.prepared);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "targeted insert");
  v0.cur = patched;

  std::vector<Delta> take_back = {
      Delta::Delete("dine",
                    {S("ivmdiff-new"), S(free_cid), Value::Int(5),
                     Value::Int(2015)}),
      Delta::Delete("friend", {S(fx.cfg.Pid(0)), S("ivmdiff-new")}),
  };
  ASSERT_TRUE(engine.Apply(take_back).ok());
  ASSERT_EQ(RefreshMaintained(&gate, v0.maint.get(), take_back, v0.cur,
                              &patched, &rs),
            RefreshOutcome::kRefreshed);
  EXPECT_GE(rs.rows_removed, 1u);
  EXPECT_EQ(patched->NumRows(), v0.cur->NumRows() - 1);
  fresh = engine.ExecutePrepared(*v0.prepared);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "targeted delete");
}

/// The spec-mandated refusal: a deletion reaching a difference subtrahend
/// can resurrect result rows whose support the difference forgot, so
/// Refresh() must report kNotMaintainable (and keep reporting it — the
/// handle is dead), and a recompute must find the resurrected row. A
/// handle rebuilt from the recomputed table resumes maintaining.
TEST(IvmGraphChurnDifferentialTest, SubtrahendDeleteForcesFallback) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  // Fid(0) belongs to Pid(0) and already dines at Cid(0) (nyc) in may, so
  // a june visit to Cid(0) suppresses exactly one result row.
  RaExprPtr q = FriendsMayNotJuneCafesQuery(fx.cfg.Pid(0));
  Result<std::shared_ptr<const PreparedQuery>> pq = engine.PrepareCompiled(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE((*pq)->info.covered);
  Result<ExecuteResult> first = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const Table> cur =
      std::make_shared<const Table>(std::move(first->table));
  size_t base_rows = cur->NumRows();
  ASSERT_GT(base_rows, 0u);
  WriterPriorityGate gate;
  std::unique_ptr<PlanMaintenance> maint =
      BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);

  // Batch 0 only *inserts* into the subtrahend: maintainable, and the
  // suppression must land in the patch.
  std::vector<Delta> grow = GraphChurnJuneBatch(fx.cfg, 0);
  ASSERT_TRUE(engine.Apply(grow).ok());
  std::shared_ptr<const Table> patched;
  RefreshStats rs;
  ASSERT_EQ(RefreshMaintained(&gate, maint.get(), grow, cur, &patched, &rs),
            RefreshOutcome::kRefreshed);
  EXPECT_EQ(patched->NumRows(), base_rows - 1);
  EXPECT_GE(rs.rows_removed, 1u);
  Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "after subtrahend insert");
  cur = patched;

  // Batch 4 deletes batch 0's june row: the subtrahend loses support it
  // deliberately never counted, so the handle must refuse — and the fresh
  // recompute resurrects the suppressed row.
  std::vector<Delta> shrink = GraphChurnJuneBatch(fx.cfg, 4);
  ASSERT_TRUE(engine.Apply(shrink).ok());
  EXPECT_EQ(RefreshMaintained(&gate, maint.get(), shrink, cur, &patched, &rs),
            RefreshOutcome::kNotMaintainable);
  // The refusal is attributed precisely: a resurrection, not a generic
  // subtrahend deletion (those are absorbed; see the matrix test below).
  EXPECT_GE(rs.resurrection_fallbacks, 1u);
  fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->table.NumRows(), base_rows);
  cur = std::make_shared<const Table>(std::move(fresh->table));

  // Dead handle stays dead, even for a maintainable-shaped batch.
  std::vector<Delta> benign = GraphChurnJuneBatch(fx.cfg, 1);
  ASSERT_TRUE(engine.Apply(benign).ok());
  EXPECT_EQ(RefreshMaintained(&gate, maint.get(), benign, cur, &patched, &rs),
            RefreshOutcome::kNotMaintainable);

  // Recovery: rebuild from a fresh post-`benign` execution; the new handle
  // maintains the next insert-only batch again.
  fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  cur = std::make_shared<const Table>(std::move(fresh->table));
  maint = BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);
  std::vector<Delta> again = GraphChurnJuneBatch(fx.cfg, 2);
  ASSERT_TRUE(engine.Apply(again).ok());
  ASSERT_EQ(RefreshMaintained(&gate, maint.get(), again, cur, &patched, &rs),
            RefreshOutcome::kRefreshed);
  fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "rebuilt handle");
}

/// The subtrahend support-count matrix: only a deletion that actually
/// resurrects a suppressed row may fall back. A deletion of a june row
/// whose key never suppressed anything, or whose key keeps support, is
/// absorbed as bookkeeping (subtrahend_decrements) with the patched table
/// staying bag-exact; the true resurrection still refuses with the precise
/// counter; and a handle rebuilt after the fallback suppresses again on
/// re-insert.
TEST(IvmGraphChurnDifferentialTest, SubtrahendSupportCountsAbsorbSafeDeletes) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());
  RaExprPtr q = FriendsMayNotJuneCafesQuery(fx.cfg.Pid(0));
  Result<std::shared_ptr<const PreparedQuery>> pq = engine.PrepareCompiled(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE((*pq)->info.covered);
  Result<ExecuteResult> first = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const Table> cur =
      std::make_shared<const Table>(std::move(first->table));
  WriterPriorityGate gate;
  std::unique_ptr<PlanMaintenance> maint =
      BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);

  auto S = [](const std::string& s) { return Value::Str(s); };
  auto check = [&](const std::vector<Delta>& batch, const std::string& ctx,
                   RefreshStats* rs) {
    ASSERT_TRUE(engine.Apply(batch).ok()) << ctx;
    std::shared_ptr<const Table> patched;
    ASSERT_EQ(RefreshMaintained(&gate, maint.get(), batch, cur, &patched, rs),
              RefreshOutcome::kRefreshed)
        << ctx;
    Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
    ASSERT_TRUE(fresh.ok()) << ctx;
    ExpectSameBag(*patched, fresh->table, ctx);
    cur = patched;
  };

  // Case 1 — never-suppressed: a june visit to a nyc cafe provably absent
  // from the minuend (june is empty, so `cur` *is* the minuend right now)
  // puts a key in the subtrahend that suppresses nothing; deleting it again
  // is a pure support-count erase, not a resurrection.
  std::string free_cid;
  for (int m = 0; m < fx.cfg.cafes && free_cid.empty(); m += 3) {  // nyc.
    Value cand = Value::Str("c" + std::to_string(m));
    bool present = false;
    for (const Tuple& row : cur->rows()) present |= row[0] == cand;
    if (!present) free_cid = "c" + std::to_string(m);
  }
  ASSERT_FALSE(free_cid.empty()) << "every nyc cafe already in the minuend";
  Tuple free_june = {S(fx.cfg.Fid(0)), S(free_cid), Value::Int(6),
                     Value::Int(2015)};
  RefreshStats rs;
  size_t rows_before = cur->NumRows();
  check({Delta::Insert("dine", free_june)}, "never-suppressed insert", &rs);
  EXPECT_EQ(cur->NumRows(), rows_before);  // Suppresses nothing.
  // The insert landed on a retained (empty) june bucket via the patch log.
  EXPECT_GE(rs.bucket_diff_hits, 1u);
  check({Delta::Delete("dine", free_june)}, "never-suppressed delete", &rs);
  EXPECT_EQ(cur->NumRows(), rows_before);
  EXPECT_GE(rs.subtrahend_decrements, 1u);
  EXPECT_EQ(rs.resurrection_fallbacks, 0u);

  // Case 2 — surviving support: Cid(0) is in the minuend (Fid(0) dines
  // there in may, it is nyc). Two friends visit it in june; taking back
  // one visit leaves the suppression supported, so the handle must absorb
  // the deletion instead of falling back.
  Tuple cid0{S(fx.cfg.Cid(0))};
  bool suppressed_target_present = false;
  for (const Tuple& row : cur->rows()) {
    suppressed_target_present |= row == cid0;
  }
  ASSERT_TRUE(suppressed_target_present);
  Tuple june_a = {S(fx.cfg.Fid(0)), S(fx.cfg.Cid(0)), Value::Int(6),
                  Value::Int(2015)};
  Tuple june_b = {S(fx.cfg.Fid(1)), S(fx.cfg.Cid(0)), Value::Int(6),
                  Value::Int(2015)};
  check({Delta::Insert("dine", june_a), Delta::Insert("dine", june_b)},
        "double june insert", &rs);
  EXPECT_EQ(cur->NumRows(), rows_before - 1);  // Cid(0) suppressed once.
  EXPECT_GE(rs.rows_removed, 1u);
  check({Delta::Delete("dine", june_b)}, "delete with surviving support",
        &rs);
  EXPECT_EQ(cur->NumRows(), rows_before - 1);  // Still suppressed.
  EXPECT_EQ(rs.resurrection_fallbacks, 0u);

  // Case 3 — the true resurrection: the last june visit to Cid(0) goes
  // away while the may row is retained. Exactly this refuses, and says so.
  std::vector<Delta> resurrect = {Delta::Delete("dine", june_a)};
  ASSERT_TRUE(engine.Apply(resurrect).ok());
  std::shared_ptr<const Table> patched;
  EXPECT_EQ(
      RefreshMaintained(&gate, maint.get(), resurrect, cur, &patched, &rs),
      RefreshOutcome::kNotMaintainable);
  EXPECT_GE(rs.resurrection_fallbacks, 1u);

  // Case 4 — recovery: rebuild from the recomputed table (the resurrected
  // row is back), then re-insert the june visit; the new handle suppresses
  // it again as a plain maintainable refresh.
  Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->table.NumRows(), rows_before);
  cur = std::make_shared<const Table>(std::move(fresh->table));
  maint = BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);
  check({Delta::Insert("dine", june_a)}, "re-insert after rebuild", &rs);
  EXPECT_EQ(cur->NumRows(), rows_before - 1);
}

/// Fat-bucket index-side deltas: with a few hundred retained rows behind
/// one probe key, refresh must patch through the mirror patch log — O(1)
/// per logged event — never by re-diffing the whole bucket. The counters
/// pin the path taken, the bag comparison pins its exactness.
TEST(IvmGraphChurnDifferentialTest, FatBucketDeltasRideThePatchLog) {
  GraphChurnConfig cfg;
  cfg.pids = 3;
  cfg.friends_per_pid = 400;
  cfg.cafes = 50;
  GraphChurnFixture fx = MakeGraphChurnFixture(cfg);
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());
  RaExprPtr q = FriendsNycCafesQuery(cfg.Pid(0));
  Result<std::shared_ptr<const PreparedQuery>> pq = engine.PrepareCompiled(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE((*pq)->info.covered);
  Result<ExecuteResult> first = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const Table> cur =
      std::make_shared<const Table>(std::move(first->table));
  WriterPriorityGate gate;
  std::unique_ptr<PlanMaintenance> maint =
      BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);

  auto S = [](const std::string& s) { return Value::Str(s); };
  size_t diff_hits = 0;
  auto check = [&](const std::vector<Delta>& batch, const std::string& ctx) {
    ASSERT_TRUE(engine.Apply(batch).ok()) << ctx;
    std::shared_ptr<const Table> patched;
    RefreshStats rs;
    ASSERT_EQ(RefreshMaintained(&gate, maint.get(), batch, cur, &patched, &rs),
              RefreshOutcome::kRefreshed)
        << ctx;
    // Every batch mutates Pid(0)'s 400-row friend bucket: the event must
    // ride the log, and nothing may force a wholesale bucket re-resolve.
    EXPECT_GE(rs.bucket_diff_hits, 1u) << ctx;
    EXPECT_EQ(rs.bucket_refetch_fallbacks, 0u) << ctx;
    diff_hits += rs.bucket_diff_hits;
    Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
    ASSERT_TRUE(fresh.ok()) << ctx;
    ExpectSameBag(*patched, fresh->table, ctx);
    cur = patched;
  };

  constexpr int kWaves = 6;
  for (int k = 0; k < kWaves; ++k) {
    std::string nf = "fat" + std::to_string(k);
    check({Delta::Insert("friend", {S(cfg.Pid(0)), S(nf)}),
           Delta::Insert("dine", {S(nf), S("c" + std::to_string(3 * k)),
                                  Value::Int(5), Value::Int(2015)})},
          "fat insert " + std::to_string(k));
  }
  for (int k = 0; k < kWaves; ++k) {
    std::string nf = "fat" + std::to_string(k);
    check({Delta::Delete("dine", {S(nf), S("c" + std::to_string(3 * k)),
                                  Value::Int(5), Value::Int(2015)}),
           Delta::Delete("friend", {S(cfg.Pid(0)), S(nf)})},
          "fat delete " + std::to_string(k));
  }
  // One logged friend-bucket event per wave, both directions.
  EXPECT_GE(diff_hits, static_cast<size_t>(2 * kWaves));
}

/// The truncation regression: under a patch budget of one, any batch with
/// three distinct-entry transitions on one index forces a mirror rebuild,
/// which truncates the log mid-batch — refresh must detect the loss
/// (bucket_refetch_fallbacks), re-resolve the touched buckets wholesale,
/// and still produce the exact table; once the mirror has rebuilt, the
/// next batch rides the log again.
TEST(IvmGraphChurnDifferentialTest, TruncatedPatchLogFallsBackToRefetch) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  EngineOptions opts = DeterministicOptions(2);
  opts.mirror_patch_budget = 1;
  BoundedEngine engine(&fx.db, fx.schema, opts);
  ASSERT_TRUE(engine.BuildIndices().ok());
  RaExprPtr q = FriendsNycCafesQuery(fx.cfg.Pid(0));
  Result<std::shared_ptr<const PreparedQuery>> pq = engine.PrepareCompiled(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE((*pq)->info.covered);
  Result<ExecuteResult> first = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const Table> cur =
      std::make_shared<const Table>(std::move(first->table));
  WriterPriorityGate gate;
  std::unique_ptr<PlanMaintenance> maint =
      BuildMaintained(&gate, (*pq)->physical, *cur);
  ASSERT_NE(maint, nullptr);

  auto S = [](const std::string& s) { return Value::Str(s); };
  std::vector<Delta> burst;
  for (int k = 0; k < 4; ++k) {
    std::string nf = "tr" + std::to_string(k);
    burst.push_back(Delta::Insert("friend", {S(fx.cfg.Pid(0)), S(nf)}));
    burst.push_back(
        Delta::Insert("dine", {S(nf), S("c" + std::to_string(3 * k)),
                               Value::Int(5), Value::Int(2015)}));
  }
  ASSERT_TRUE(engine.Apply(burst).ok());
  std::shared_ptr<const Table> patched;
  RefreshStats rs;
  ASSERT_EQ(RefreshMaintained(&gate, maint.get(), burst, cur, &patched, &rs),
            RefreshOutcome::kRefreshed);
  // Pid(0)'s friend bucket re-resolved wholesale, exactly once, and no
  // event could have been replayed off the truncated log.
  EXPECT_EQ(rs.bucket_refetch_fallbacks, 1u);
  EXPECT_EQ(rs.bucket_diff_hits, 0u);
  Result<ExecuteResult> fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "post-truncation refresh");
  cur = patched;

  // The fresh execution above re-froze the mirrors, so a small follow-up
  // batch logs cleanly and refresh is back on the O(delta) path.
  std::vector<Delta> small = {
      Delta::Insert("friend", {S(fx.cfg.Pid(0)), S("tr-post")}),
      Delta::Insert("dine",
                    {S("tr-post"), S("c0"), Value::Int(5), Value::Int(2015)}),
  };
  ASSERT_TRUE(engine.Apply(small).ok());
  ASSERT_EQ(RefreshMaintained(&gate, maint.get(), small, cur, &patched, &rs),
            RefreshOutcome::kRefreshed);
  EXPECT_GE(rs.bucket_diff_hits, 1u);
  EXPECT_EQ(rs.bucket_refetch_fallbacks, 0u);
  fresh = engine.ExecutePrepared(**pq);
  ASSERT_TRUE(fresh.ok());
  ExpectSameBag(*patched, fresh->table, "post-rebuild refresh");
}

}  // namespace
}  // namespace bqe
