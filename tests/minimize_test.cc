#include <gtest/gtest.h>

#include <algorithm>

#include "core/minimize.h"
#include "ra/builder.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ1;

class MinimizeTest : public ::testing::Test {
 protected:
  MinimizeTest() : fx_(MakeGraphSearch(false)) {}

  NormalizedQuery Norm(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    return std::move(*nq);
  }

  static bool Contains(const std::vector<int>& ids, int id) {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  }

  testutil::GraphSearchFixture fx_;
};

// -------------------------------------------------- Example 9 (minA) -------

TEST_F(MinimizeTest, ExampleNineGreedyDropsPsi5AndPsi3) {
  // A1 = A0 + psi5: dine((pid, year) -> cid, 366). For Q1, minA must return
  // {psi1, psi2, psi4}: psi5 loses to psi2 on weight (366 vs 31), psi3 is
  // redundant for Q1.
  AccessSchema a1 = fx_.schema;
  ASSERT_TRUE(
      a1.Add(*AccessConstraint::Parse("dine((pid, year) -> (cid), 366)"),
             fx_.db.catalog())
          .ok());
  int psi5 = 4;
  NormalizedQuery nq = Norm(MakeQ1());
  Result<MinimizeResult> m = MinimizeAccess(nq, a1, MinimizeAlgo::kGreedy);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(Contains(m->kept_ids, fx_.psi1));
  EXPECT_TRUE(Contains(m->kept_ids, fx_.psi2));
  EXPECT_TRUE(Contains(m->kept_ids, fx_.psi4));
  EXPECT_FALSE(Contains(m->kept_ids, psi5));
  EXPECT_FALSE(Contains(m->kept_ids, fx_.psi3));
  EXPECT_EQ(m->total_n, 5000 + 31 + 1);
}

TEST_F(MinimizeTest, GreedyResultIsMinimal) {
  NormalizedQuery nq = Norm(MakeQ1());
  Result<MinimizeResult> m =
      MinimizeAccess(nq, fx_.schema, MinimizeAlgo::kGreedy);
  ASSERT_TRUE(m.ok());
  // Removing any kept constraint must break coverage.
  for (size_t drop = 0; drop < m->kept_ids.size(); ++drop) {
    std::vector<int> fewer;
    for (size_t i = 0; i < m->kept_ids.size(); ++i) {
      if (i != drop) fewer.push_back(m->kept_ids[i]);
    }
    Result<CoverageReport> r = CheckCoverage(nq, fx_.schema.Subset(fewer));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->covered) << "dropping id " << m->kept_ids[drop]
                             << " kept the query covered";
  }
}

TEST_F(MinimizeTest, MinimizedSchemaStillCovers) {
  NormalizedQuery nq = Norm(testutil::MakeQ0Prime());
  for (MinimizeAlgo algo : {MinimizeAlgo::kGreedy, MinimizeAlgo::kAcyclic,
                            MinimizeAlgo::kElementary}) {
    Result<MinimizeResult> m = MinimizeAccess(nq, fx_.schema, algo);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    Result<CoverageReport> r = CheckCoverage(nq, m->minimized);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->covered);
    EXPECT_LE(m->total_n, fx_.schema.TotalN());
  }
}

TEST_F(MinimizeTest, FailsOnUncoveredQuery) {
  NormalizedQuery nq = Norm(testutil::MakeQ2());
  Result<MinimizeResult> m =
      MinimizeAccess(nq, fx_.schema, MinimizeAlgo::kGreedy);
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MinimizeTest, DropsConstraintsOnUnrelatedRelations) {
  // Constraints on cafe are irrelevant to a friend-only query.
  RaExprPtr q = Project(
      Select(Rel("friend"), {EqC(A("friend", "pid"), Value::Str("p0"))}),
      {A("friend", "fid")});
  NormalizedQuery nq = Norm(q);
  Result<MinimizeResult> m =
      MinimizeAccess(nq, fx_.schema, MinimizeAlgo::kGreedy);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(Contains(m->kept_ids, fx_.psi4));
  EXPECT_TRUE(Contains(m->kept_ids, fx_.psi1));
}

// ------------------------------------------- Example 10 (minADAG, acyclic) --

TEST_F(MinimizeTest, ExampleTenAcyclicShortestPaths) {
  AccessSchema a1 = fx_.schema;
  ASSERT_TRUE(
      a1.Add(*AccessConstraint::Parse("dine((pid, year) -> (cid), 366)"),
             fx_.db.catalog())
          .ok());
  int psi5 = 4;
  NormalizedQuery nq = Norm(MakeQ1());
  ASSERT_TRUE(*IsAcyclicCase(nq, a1));
  Result<MinimizeResult> m = MinimizeAccess(nq, a1, MinimizeAlgo::kAcyclic);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Example 10: the shortest hyperpath to cid uses psi2 (31 < 366).
  EXPECT_TRUE(Contains(m->kept_ids, fx_.psi2));
  EXPECT_FALSE(Contains(m->kept_ids, psi5));
  Result<CoverageReport> r = CheckCoverage(nq, m->minimized);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->covered);
}

TEST_F(MinimizeTest, AcyclicPredicateDetectsRecursion) {
  // a -> b and b -> a on the same relation creates a cycle between classes.
  AccessSchema cyc;
  ASSERT_TRUE(cyc.Add(*AccessConstraint::Parse("friend((pid) -> (fid), 10)"),
                      fx_.db.catalog())
                  .ok());
  ASSERT_TRUE(cyc.Add(*AccessConstraint::Parse("friend((fid) -> (pid), 10)"),
                      fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(
      Select(Rel("friend"), {EqC(A("friend", "pid"), Value::Str("p0"))}),
      {A("friend", "fid")});
  NormalizedQuery nq = Norm(q);
  Result<bool> acyclic = IsAcyclicCase(nq, cyc);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_FALSE(*acyclic);
  // A0 on Q1 is acyclic (stated below Example 1's discussion in Sec. 6.1).
  EXPECT_TRUE(*IsAcyclicCase(Norm(MakeQ1()), fx_.schema));
}

// ------------------------------------------------- minAE (elementary) ------

TEST_F(MinimizeTest, ElementaryPredicate) {
  // A0 \ {psi2} is elementary (the paper notes this after Theorem 9):
  // psi1, psi4 are unit; psi3 is an indexing constraint.
  AccessSchema no_psi2 = fx_.schema.Subset({fx_.psi1, fx_.psi3, fx_.psi4});
  EXPECT_TRUE(IsElementaryCase(no_psi2));
  EXPECT_FALSE(IsElementaryCase(fx_.schema));  // psi2 has |X| = 3.
}

TEST_F(MinimizeTest, ElementarySteinerPicksCheapChain) {
  // Unit chain with two options: pid -> fid with N = 100 or via two hops
  // costing 2 + 3. friend(pid -> fid): terminals {fid}.
  AccessSchema schema;
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("friend((pid) -> (fid), 100)"),
                         fx_.db.catalog())
                  .ok());
  ASSERT_TRUE(schema.Add(*AccessConstraint::Parse("cafe((cid) -> (city), 2)"),
                         fx_.db.catalog())
                  .ok());
  RaExprPtr q = Project(
      Select(Product(Rel("friend"), Rel("cafe")),
             {EqC(A("friend", "pid"), Value::Str("p0")),
              EqA(A("friend", "fid"), A("cafe", "cid"))}),
      {A("cafe", "city")});
  NormalizedQuery nq = Norm(q);
  ASSERT_TRUE(IsElementaryCase(schema));
  Result<MinimizeResult> m =
      MinimizeAccess(nq, schema, MinimizeAlgo::kElementary);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Result<CoverageReport> r = CheckCoverage(nq, m->minimized);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->covered);
}

TEST_F(MinimizeTest, TotalNNeverIncreases) {
  NormalizedQuery nq = Norm(MakeQ1());
  for (MinimizeAlgo algo : {MinimizeAlgo::kGreedy, MinimizeAlgo::kAcyclic,
                            MinimizeAlgo::kElementary}) {
    Result<MinimizeResult> m = MinimizeAccess(nq, fx_.schema, algo);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    EXPECT_LE(m->total_n, fx_.schema.TotalN());
    EXPECT_LE(m->kept_ids.size(), fx_.schema.size());
  }
}

TEST_F(MinimizeTest, WeightCoefficientsRespected) {
  // With c1 >> small, behavior unchanged (weights scale uniformly).
  AccessSchema a1 = fx_.schema;
  ASSERT_TRUE(
      a1.Add(*AccessConstraint::Parse("dine((pid, year) -> (cid), 366)"),
             fx_.db.catalog())
          .ok());
  NormalizedQuery nq = Norm(MakeQ1());
  MinimizeOptions opts;
  opts.c1 = 10.0;
  opts.c2 = 0.5;
  Result<MinimizeResult> m =
      MinimizeAccess(nq, a1, MinimizeAlgo::kGreedy, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(Contains(m->kept_ids, 4));  // psi5 still dropped.
}

}  // namespace
}  // namespace bqe
