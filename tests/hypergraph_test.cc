#include <gtest/gtest.h>

#include <set>

#include "hypergraph/hypergraph.h"
#include "hypergraph/steiner.h"

namespace bqe {
namespace {

// ------------------------------------------------------------ Hypergraph ---

TEST(HypergraphTest, AddNodesAndEdges) {
  Hypergraph g;
  int a = g.AddNode("a"), b = g.AddNode("b"), c = g.AddNode("c");
  ASSERT_TRUE(g.AddEdge({a, b}, c).ok());
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.label(a), "a");
}

TEST(HypergraphTest, EdgeValidation) {
  Hypergraph g;
  int a = g.AddNode(), b = g.AddNode();
  EXPECT_FALSE(g.AddEdge({}, b).ok());          // Empty head.
  EXPECT_FALSE(g.AddEdge({a}, 99).ok());        // Tail out of range.
  EXPECT_FALSE(g.AddEdge({99}, b).ok());        // Head out of range.
  EXPECT_FALSE(g.AddEdge({a, b}, b).ok());      // Tail in head.
}

TEST(HypergraphTest, HeadDeduplicated) {
  Hypergraph g;
  int a = g.AddNode(), b = g.AddNode();
  Result<int> e = g.AddEdge({a, a}, b);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.edges()[0].head.size(), 1u);
}

TEST(HypergraphTest, ReachabilityRequiresFullHead) {
  Hypergraph g;
  int a = g.AddNode(), b = g.AddNode(), c = g.AddNode();
  ASSERT_TRUE(g.AddEdge({a, b}, c).ok());
  std::vector<bool> from_a = g.Reachable({a});
  EXPECT_FALSE(from_a[static_cast<size_t>(c)]);
  std::vector<bool> from_ab = g.Reachable({a, b});
  EXPECT_TRUE(from_ab[static_cast<size_t>(c)]);
}

TEST(HypergraphTest, ChainedReachability) {
  Hypergraph g;
  int r = g.AddNode(), x = g.AddNode(), y = g.AddNode(), z = g.AddNode();
  ASSERT_TRUE(g.AddEdge({r}, x).ok());
  ASSERT_TRUE(g.AddEdge({x}, y).ok());
  ASSERT_TRUE(g.AddEdge({x, y}, z).ok());
  std::vector<bool> reach = g.Reachable({r});
  EXPECT_TRUE(reach[static_cast<size_t>(z)]);
}

TEST(HypergraphTest, FindHyperpathOrdersDependencies) {
  Hypergraph g;
  int r = g.AddNode("r"), x = g.AddNode("x"), y = g.AddNode("y"),
      z = g.AddNode("z");
  int e1 = *g.AddEdge({r}, x);
  int e2 = *g.AddEdge({r}, y);
  int e3 = *g.AddEdge({x, y}, z);
  Result<std::vector<int>> path = g.FindHyperpath({r}, z);
  ASSERT_TRUE(path.ok());
  // e3 must come after e1 and e2.
  std::vector<int> p = *path;
  auto pos = [&](int e) {
    return std::find(p.begin(), p.end(), e) - p.begin();
  };
  EXPECT_LT(pos(e1), pos(e3));
  EXPECT_LT(pos(e2), pos(e3));
}

TEST(HypergraphTest, FindHyperpathUnreachable) {
  Hypergraph g;
  int r = g.AddNode(), x = g.AddNode(), y = g.AddNode();
  ASSERT_TRUE(g.AddEdge({x}, y).ok());
  EXPECT_EQ(g.FindHyperpath({r}, y).status().code(), StatusCode::kNotFound);
}

TEST(HypergraphTest, FindHyperpathToSourceIsEmpty) {
  Hypergraph g;
  int r = g.AddNode();
  Result<std::vector<int>> path = g.FindHyperpath({r}, r);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST(HypergraphTest, HyperpathIsMinimalish) {
  // Two ways to reach t; the extracted path should use only one.
  Hypergraph g;
  int r = g.AddNode(), a = g.AddNode(), b = g.AddNode(), t = g.AddNode();
  ASSERT_TRUE(g.AddEdge({r}, a).ok());
  ASSERT_TRUE(g.AddEdge({r}, b).ok());
  ASSERT_TRUE(g.AddEdge({a}, t).ok());
  ASSERT_TRUE(g.AddEdge({b}, t).ok());
  Result<std::vector<int>> path = g.FindHyperpath({r}, t);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 2u);  // r->a (or r->b) plus one edge into t.
}

// ----------------------------------------------------- Shortest hyperpath ---

TEST(HypergraphShortestTest, PicksCheaperAlternative) {
  Hypergraph g;
  int r = g.AddNode(), a = g.AddNode(), b = g.AddNode(), t = g.AddNode();
  ASSERT_TRUE(g.AddEdge({r}, a, 1.0).ok());
  ASSERT_TRUE(g.AddEdge({r}, b, 10.0).ok());
  ASSERT_TRUE(g.AddEdge({a}, t, 1.0).ok());
  ASSERT_TRUE(g.AddEdge({b}, t, 1.0).ok());
  auto sr = g.ShortestHyperpaths({r});
  EXPECT_DOUBLE_EQ(sr.dist[static_cast<size_t>(t)], 2.0);
  Result<std::vector<int>> path = g.ExtractPath(sr, t);
  ASSERT_TRUE(path.ok());
  double cost = 0;
  for (int ei : *path) cost += g.edges()[static_cast<size_t>(ei)].weight;
  EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(HypergraphShortestTest, SumCostOverHead) {
  Hypergraph g;
  int r = g.AddNode(), x = g.AddNode(), y = g.AddNode(), t = g.AddNode();
  ASSERT_TRUE(g.AddEdge({r}, x, 3.0).ok());
  ASSERT_TRUE(g.AddEdge({r}, y, 4.0).ok());
  ASSERT_TRUE(g.AddEdge({x, y}, t, 5.0).ok());
  auto sr = g.ShortestHyperpaths({r});
  EXPECT_DOUBLE_EQ(sr.dist[static_cast<size_t>(t)], 12.0);  // 3 + 4 + 5.
}

TEST(HypergraphShortestTest, UnreachableIsMarked) {
  Hypergraph g;
  int r = g.AddNode(), t = g.AddNode();
  auto sr = g.ShortestHyperpaths({r});
  EXPECT_GE(sr.dist[static_cast<size_t>(t)],
            Hypergraph::ShortestResult::kUnreachable);
  EXPECT_FALSE(g.ExtractPath(sr, t).ok());
}

// --------------------------------------------------------------- Acyclic ---

TEST(HypergraphTest, AcyclicDetection) {
  Hypergraph g;
  int a = g.AddNode(), b = g.AddNode(), c = g.AddNode();
  ASSERT_TRUE(g.AddEdge({a}, b).ok());
  ASSERT_TRUE(g.AddEdge({b}, c).ok());
  EXPECT_TRUE(g.UnderlyingAcyclic());
  ASSERT_TRUE(g.AddEdge({c}, a).ok());
  EXPECT_FALSE(g.UnderlyingAcyclic());
}

TEST(HypergraphTest, EmptyGraphIsAcyclic) {
  Hypergraph g;
  EXPECT_TRUE(g.UnderlyingAcyclic());
}

// ---------------------------------------------------------------- Steiner ---

TEST(SteinerTest, SinglePath) {
  // 0 -> 1 -> 2; terminal {2}.
  std::vector<DiEdge> edges = {{0, 1, 2.0, 10}, {1, 2, 3.0, 11}};
  Result<SteinerSolution> s = SolveSteinerArborescence(3, edges, 0, {2});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->cost, 5.0);
  EXPECT_EQ(s->edge_ids.size(), 2u);
}

TEST(SteinerTest, SharedPrefixCountedOnce) {
  // 0 -> 1 (cost 10), then 1 -> 2 and 1 -> 3 (cost 1 each). Spanning both
  // terminals should cost 12, not 22.
  std::vector<DiEdge> edges = {{0, 1, 10.0, 0}, {1, 2, 1.0, 1}, {1, 3, 1.0, 2}};
  Result<SteinerSolution> s = SolveSteinerArborescence(4, edges, 0, {2, 3});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->cost, 12.0);
}

TEST(SteinerTest, PrefersCheapSharedBranch) {
  // Direct edges 0->2, 0->3 cost 6 each (total 12); the shared branch via 1
  // costs 5 + 1 + 1 = 7.
  std::vector<DiEdge> edges = {{0, 2, 6.0, 0},
                               {0, 3, 6.0, 1},
                               {0, 1, 5.0, 2},
                               {1, 2, 1.0, 3},
                               {1, 3, 1.0, 4}};
  Result<SteinerSolution> s = SolveSteinerArborescence(4, edges, 0, {2, 3}, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_LE(s->cost, 12.0);
  EXPECT_DOUBLE_EQ(s->cost, 7.0);
}

TEST(SteinerTest, UnreachableTerminalFails) {
  std::vector<DiEdge> edges = {{0, 1, 1.0, 0}};
  EXPECT_EQ(SolveSteinerArborescence(3, edges, 0, {2}).status().code(),
            StatusCode::kNotFound);
}

TEST(SteinerTest, RootTerminalTrivial) {
  Result<SteinerSolution> s = SolveSteinerArborescence(1, {}, 0, {0});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->cost, 0.0);
}

TEST(SteinerTest, NegativeWeightRejected) {
  std::vector<DiEdge> edges = {{0, 1, -1.0, 0}};
  EXPECT_EQ(SolveSteinerArborescence(2, edges, 0, {1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SteinerTest, Level1StillSpans) {
  std::vector<DiEdge> edges = {{0, 1, 1.0, 0}, {1, 2, 1.0, 1}, {0, 3, 1.0, 2}};
  Result<SteinerSolution> s =
      SolveSteinerArborescence(4, edges, 0, {2, 3}, /*level=*/1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->covered_terminals, 2);
}

}  // namespace
}  // namespace bqe
