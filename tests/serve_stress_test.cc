#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/physical_plan.h"
#include "serve/query_service.h"
#include "workload/graph_churn.h"

namespace bqe {
namespace {

/// Serving-layer stress: concurrent clients and a delta writer all go
/// through one QueryService. The service must stay TSan-clean, answer every
/// request, keep zero engine re-prepares across the data-only churn
/// (observed through its stats endpoint), and its post-storm answers must
/// match a freshly prepared plan row-for-row and an uncached engine as a
/// set. This is the production shape of what cache_coherence_stress_test
/// pins with hand-rolled locking.

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceStats;
using workload::FriendsNycCafesQuery;
using workload::GraphChurnBatch;
using workload::GraphChurnConfig;
using workload::GraphChurnFixture;
using workload::MakeGraphChurnFixture;

EngineOptions DeterministicOptions(size_t threads) {
  EngineOptions opts;
  opts.exec_threads = threads;
  opts.row_path_threshold = 0;
  return opts;
}

/// Exact multiset equality, order-free: an IVM-refreshed cached table keeps
/// surviving rows in place and appends net additions, so its row order
/// legitimately differs from a fresh execution's.
void ExpectSameBag(const Table& got, const Table& want,
                   const std::string& context) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << context;
  std::vector<Tuple> g = got.rows(), w = want.rows();
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(g, w) << context;
}

Table FreshlyPreparedAnswer(const BoundedEngine& engine, const RaExprPtr& q,
                            size_t threads) {
  Result<PrepareInfo> info = engine.Prepare(q);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->covered);
  Result<PhysicalPlan> pp = PhysicalPlan::Compile(info->plan, engine.indices());
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  ExecOptions eo;
  eo.num_threads = threads;
  Result<Table> t = ExecutePhysicalPlan(*pp, nullptr, eo);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TEST(ServeStressTest, ConcurrentClientsAndDeltaWriterStayCoherent) {
  GraphChurnFixture fx = MakeGraphChurnFixture();
  BoundedEngine engine(&fx.db, fx.schema, DeterministicOptions(2));
  ASSERT_TRUE(engine.BuildIndices().ok());

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 50;
  constexpr int kWriterBatches = 40;
  constexpr int kQueries = 4;

  std::vector<RaExprPtr> queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(FriendsNycCafesQuery(fx.cfg.Pid(i)));
  }

  uint64_t warm_misses = 0;
  ServiceStats end_stats;
  {
    ServiceOptions sopts;
    sopts.shards = 3;
    sopts.batch_window = 16;
    QueryService service(&engine, sopts);

    // Warm every fingerprint once so the storm serves entirely off pins.
    for (const RaExprPtr& q : queries) {
      QueryResponse r = service.Query(q);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      ASSERT_TRUE(r.used_bounded_plan);
    }
    warm_misses = service.stats().engine.misses;

    std::atomic<int> answered{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          size_t qi = static_cast<size_t>(c + i) % queries.size();
          QueryResponse r = service.Query(queries[qi]);
          if (!r.status.ok() || !r.used_bounded_plan || r.table == nullptr) {
            failed.store(true);
          }
          answered.fetch_add(1);
        }
      });
    }
    std::thread writer([&] {
      for (int b = 0; b < kWriterBatches; ++b) {
        // Pace deltas against client progress so batches land *between*
        // pinned executions rather than all up front.
        while (answered.load() < b * 3 && !failed.load()) {
          std::this_thread::yield();
        }
        serve::DeltaResponse dr =
            service.ApplyDeltas(GraphChurnBatch(fx.cfg, "ss", b));
        if (!dr.status.ok() || dr.stats.constraints_grown != 0) {
          failed.store(true);
        }
      }
    });
    for (std::thread& t : clients) t.join();
    writer.join();
    EXPECT_FALSE(failed.load());

    // Post-storm: answers off the service (possibly IVM-refreshed cache
    // hits) match a freshly prepared plan as an exact bag over the live
    // indices, and an independent uncached engine as a set.
    EngineOptions uncached_opts = DeterministicOptions(2);
    uncached_opts.plan_cache = false;
    BoundedEngine oracle(&fx.db, fx.schema, uncached_opts);
    ASSERT_TRUE(oracle.BuildIndices().ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      QueryResponse r = service.Query(queries[qi]);
      ASSERT_TRUE(r.status.ok());
      std::string ctx = "post-storm query " + std::to_string(qi);
      ExpectSameBag(*r.table, FreshlyPreparedAnswer(engine, queries[qi], 2),
                    ctx);
      Result<ExecuteResult> fresh = oracle.Execute(queries[qi]);
      ASSERT_TRUE(fresh.ok());
      EXPECT_TRUE(Table::SameSet(*r.table, fresh->table)) << ctx;
    }

    // One serial coda batch makes the refresh assertion deterministic:
    // whatever the storm's interleaving, the post-storm reads above left
    // every fingerprint resident *with* a maintenance handle (handles are
    // reuse-promoted, and by now each fingerprint has executed at least
    // twice), so this batch must patch them all in place.
    ASSERT_TRUE(
        service.ApplyDeltas(GraphChurnBatch(fx.cfg, "ss", kWriterBatches))
            .status.ok());

    end_stats = service.stats();
    service.Shutdown();
  }

  // The acceptance bar: zero re-prepares during data-only churn, observed
  // through the service's stats endpoint, and not a single plan-cache miss
  // beyond the warmup — the storm was served entirely off pinned plans.
  EXPECT_EQ(end_stats.engine.reprepares, 0u);
  EXPECT_EQ(end_stats.engine.misses, warm_misses);
  constexpr uint64_t kTotalQueries =
      static_cast<uint64_t>(kClients) * kRequestsPerClient +
      static_cast<uint64_t>(kQueries) * 2;  // Warmup + post-storm checks.
  // Every query request was answered in exactly one of five ways: leader
  // execution, coalesced behind one, result-cache hit at admission (never
  // admitted at all), result-cache hit at dispatch, or a hit on an entry
  // IVM patched across a delta batch. Between delta batches the storm's
  // duplicate reads land on the cache, so executions drop far below the
  // request count — but the accounting stays exact.
  EXPECT_EQ(end_stats.executed + end_stats.coalesced +
                end_stats.result_hits_admission +
                end_stats.result_hits_window + end_stats.result_hits_refreshed,
            kTotalQueries);
  // Refreshed hits are not split by site (admission vs dispatch), so the
  // admission identity is a two-sided bound.
  EXPECT_LE(end_stats.admitted + end_stats.result_hits_admission,
            kTotalQueries + static_cast<uint64_t>(kWriterBatches) + 1);
  EXPECT_GE(end_stats.admitted + end_stats.result_hits_admission +
                end_stats.result_hits_refreshed,
            kTotalQueries + static_cast<uint64_t>(kWriterBatches) + 1);
  EXPECT_EQ(end_stats.rejected, 0u);
  // 300 same-fingerprint reads against 40 delta batches: the cache must
  // actually absorb traffic across epochs, not just stay correct — the
  // maintained entries keep serving instead of dying with each batch.
  EXPECT_GT(end_stats.result_cache.hits, 0u);
  EXPECT_GE(end_stats.result_cache.refreshes, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(end_stats.result_cache.refresh_fallbacks, 0u)
      << "insert-only churn through fetch/join plans must stay maintainable";
  EXPECT_EQ(end_stats.result_cache.hits,
            end_stats.result_hits_admission + end_stats.result_hits_window +
                end_stats.result_hits_refreshed);
  EXPECT_EQ(end_stats.result_cache.hits + end_stats.result_cache.misses,
            end_stats.result_cache.lookups);
  EXPECT_EQ(end_stats.delta_batches, static_cast<uint64_t>(kWriterBatches) + 1);
  // One-pass snapshot identities (see StatsSnapshotStaysConsistent...).
  EXPECT_EQ(end_stats.data_epoch, static_cast<uint64_t>(kWriterBatches) + 1);
  EXPECT_EQ(engine.DataEpoch(), static_cast<uint64_t>(kWriterBatches) + 1);
  EXPECT_EQ(engine.SchemaEpoch(), 1u + 0u /* built once, no bound growth */);
  EXPECT_EQ(end_stats.schema_epoch, engine.SchemaEpoch());
}

}  // namespace
}  // namespace bqe
