#include <gtest/gtest.h>

#include "constraints/index.h"
#include "core/cov.h"
#include "core/plan2sql.h"
#include "core/plan_exec.h"
#include "core/qplan.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0Prime;
using testutil::MakeQ1;

class Plan2SqlTest : public ::testing::Test {
 protected:
  Plan2SqlTest() : fx_(MakeGraphSearch(false)) {}

  BoundedPlan Plan(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok());
    Result<CoverageReport> report = CheckCoverage(*nq, fx_.schema);
    EXPECT_TRUE(report.ok());
    Result<BoundedPlan> plan = GeneratePlan(*nq, *report);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : BoundedPlan();
  }

  testutil::GraphSearchFixture fx_;
};

TEST_F(Plan2SqlTest, EmitsOneCtePerStep) {
  BoundedPlan plan = Plan(MakeQ1());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_NE(sql->find("t" + std::to_string(i) + " AS ("), std::string::npos)
        << "missing CTE t" << i;
  }
}

TEST_F(Plan2SqlTest, FetchReadsIndexRelations) {
  BoundedPlan plan = Plan(MakeQ1());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  // Q1 uses indices of psi1, psi2 and psi4 (source ids 0, 1, 3).
  EXPECT_NE(sql->find("FROM ind_0"), std::string::npos);
  EXPECT_NE(sql->find("FROM ind_1"), std::string::npos);
  EXPECT_NE(sql->find("FROM ind_3"), std::string::npos);
}

TEST_F(Plan2SqlTest, FetchFiltersByInputKeys) {
  BoundedPlan plan = Plan(MakeQ1());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find(") IN (SELECT"), std::string::npos);
}

TEST_F(Plan2SqlTest, DiffBecomesExcept) {
  BoundedPlan plan = Plan(MakeQ0Prime());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("EXCEPT"), std::string::npos);
}

TEST_F(Plan2SqlTest, FinalSelectReferencesOutputStep) {
  BoundedPlan plan = Plan(MakeQ1());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  std::string expected =
      "SELECT DISTINCT * FROM t" + std::to_string(plan.output) + ";";
  EXPECT_NE(sql->find(expected), std::string::npos) << *sql;
}

TEST_F(Plan2SqlTest, ConstantsRenderedAsLiterals) {
  BoundedPlan plan = Plan(MakeQ1());
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("'p0'"), std::string::npos);
  EXPECT_NE(sql->find("'nyc'"), std::string::npos);
}

TEST_F(Plan2SqlTest, EmptyPlanStepRendered) {
  BoundedPlan plan;
  PlanStep empty;
  empty.kind = PlanStep::Kind::kEmpty;
  empty.col_names = {"a"};
  plan.steps.push_back(empty);
  plan.output = 0;
  plan.output_names = {"a"};
  Result<std::string> sql = PlanToSql(plan);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("WHERE 1 = 0"), std::string::npos);
}

TEST_F(Plan2SqlTest, MissingOutputRejected) {
  BoundedPlan plan;
  EXPECT_EQ(PlanToSql(plan).status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace bqe
