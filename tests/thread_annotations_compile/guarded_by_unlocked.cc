// Negative case: writes a GUARDED_BY field without holding its mutex.
// Under clang -Werror=thread-safety this must FAIL to compile
// (-Wthread-safety-analysis: writing variable requires holding mutex).
// thread_annotations_compile_test.cc asserts the failure.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    total_ += d;  // BUG under test: mu_ not held.
  }

 private:
  bqe::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return 0;
}
