// Positive control for the thread-annotation compile tests: a correctly
// locked use of GUARDED_BY and REQUIRES. Must compile under every
// supported compiler, with -Werror=thread-safety under clang — if this
// file fails, the negative cases below prove nothing.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    bqe::MutexLock lk(&mu_);
    AddLocked(d);
  }
  int Get() {
    bqe::MutexLock lk(&mu_);
    return total_;
  }

 private:
  void AddLocked(int d) REQUIRES(mu_) { total_ += d; }

  bqe::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Get() == 1 ? 0 : 1;
}
