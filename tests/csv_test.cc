#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv.h"

namespace bqe {
namespace {

Table MakeTable() {
  return Table(RelationSchema("t", {{"id", ValueType::kInt},
                                    {"name", ValueType::kString},
                                    {"score", ValueType::kDouble}}));
}

TEST(CsvTest, ReadSimple) {
  Table t = MakeTable();
  ASSERT_TRUE(ReadCsvInto(&t,
                          "id,name,score\n"
                          "1,ada,2.5\n"
                          "2,bob,3\n")
                  .ok());
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0], Value::Int(1));
  EXPECT_EQ(t.rows()[0][1], Value::Str("ada"));
  EXPECT_EQ(t.rows()[0][2], Value::Double(2.5));
  EXPECT_EQ(t.rows()[1][2], Value::Double(3.0));  // Int literal widens.
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  Table t = MakeTable();
  ASSERT_TRUE(ReadCsvInto(&t,
                          "id,name,score\n"
                          "1,\"last, first\",1.0\n"
                          "2,\"say \"\"hi\"\"\",2.0\n")
                  .ok());
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][1], Value::Str("last, first"));
  EXPECT_EQ(t.rows()[1][1], Value::Str("say \"hi\""));
}

TEST(CsvTest, EmptyFieldIsNullQuotedEmptyIsString) {
  Table t = MakeTable();
  ASSERT_TRUE(ReadCsvInto(&t,
                          "id,name,score\n"
                          "1,,2.0\n"
                          "2,\"\",3.0\n")
                  .ok());
  EXPECT_TRUE(t.rows()[0][1].is_null());
  EXPECT_EQ(t.rows()[1][1], Value::Str(""));
}

TEST(CsvTest, CrlfAndTrailingBlankLinesTolerated) {
  Table t = MakeTable();
  ASSERT_TRUE(ReadCsvInto(&t,
                          "id,name,score\r\n"
                          "1,x,1.5\r\n"
                          "\n")
                  .ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(CsvTest, HeaderMismatchRejected) {
  Table t = MakeTable();
  Status s = ReadCsvInto(&t, "id,wrong,score\n1,x,1.0\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  Status arity = ReadCsvInto(&t, "id,name\n");
  EXPECT_EQ(arity.code(), StatusCode::kParseError);
}

TEST(CsvTest, NoHeaderMode) {
  Table t = MakeTable();
  CsvOptions opts;
  opts.expect_header = false;
  ASSERT_TRUE(ReadCsvInto(&t, "7,x,0.5\n", opts).ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(CsvTest, TypeErrorsAreDiagnosed) {
  Table t = MakeTable();
  Status s = ReadCsvInto(&t, "id,name,score\nnot_an_int,x,1.0\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_NE(s.message().find("id"), std::string::npos);
}

TEST(CsvTest, FieldCountMismatchRejected) {
  Table t = MakeTable();
  Status s = ReadCsvInto(&t, "id,name,score\n1,x\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("a,b"), Value::Double(0.25)}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value(), Value::Double(-1.5)}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(3), Value::Str(""), Value::Double(9.0)}).ok());
  std::string csv = WriteCsv(t);
  Table back = MakeTable();
  ASSERT_TRUE(ReadCsvInto(&back, csv).ok()) << csv;
  ASSERT_EQ(back.NumRows(), 3u);
  EXPECT_TRUE(Table::SameSet(t, back));
  EXPECT_TRUE(back.rows()[1][1].is_null());
  EXPECT_EQ(back.rows()[2][1], Value::Str(""));
}

TEST(CsvTest, CustomDelimiter) {
  Table t = MakeTable();
  CsvOptions opts;
  opts.delimiter = ';';
  ASSERT_TRUE(ReadCsvInto(&t, "id;name;score\n4;x;1.0\n", opts).ok());
  EXPECT_EQ(t.NumRows(), 1u);
  std::string csv = WriteCsv(t, opts);
  EXPECT_NE(csv.find("id;name;score"), std::string::npos);
}

TEST(CsvTest, FileRoundTrip) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(5), Value::Str("file"), Value::Double(1.0)}).ok());
  std::string path = ::testing::TempDir() + "/bqe_csv_test.csv";
  ASSERT_TRUE(SaveCsvFile(t, path).ok());

  Database db;
  ASSERT_TRUE(db.CreateTable(t.schema()).ok());
  ASSERT_TRUE(LoadCsvFile(&db, "t", path).ok());
  EXPECT_EQ(db.Get("t")->NumRows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakeTable().schema()).ok());
  EXPECT_EQ(LoadCsvFile(&db, "t", "/nonexistent/nope.csv").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadCsvFile(&db, "zzz", "/tmp/x.csv").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace bqe
