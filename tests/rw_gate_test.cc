#include "common/rw_gate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace bqe {
namespace {

TEST(WriterPriorityGateTest, WriterExcludesReadersAndWriters) {
  WriterPriorityGate gate;
  std::atomic<int> readers_inside{0};
  std::atomic<int> writers_inside{0};
  std::atomic<bool> violated{false};
  constexpr int kOpsPerThread = 400;

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::shared_lock<WriterPriorityGate> lk(gate);
        readers_inside.fetch_add(1);
        if (writers_inside.load() != 0) violated.store(true);
        readers_inside.fetch_sub(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::unique_lock<WriterPriorityGate> lk(gate);
        if (writers_inside.fetch_add(1) != 0) violated.store(true);
        if (readers_inside.load() != 0) violated.store(true);
        writers_inside.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(WriterPriorityGateTest, ConcurrentReadersOverlap) {
  WriterPriorityGate gate;
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::shared_lock<WriterPriorityGate> lk(gate);
      int now = inside.fetch_add(1) + 1;
      int prev = max_inside.load();
      while (prev < now && !max_inside.compare_exchange_weak(prev, now)) {
      }
      // Hold until every reader has entered: proves shared admission.
      while (inside.load() < 4 && !release.load()) std::this_thread::yield();
      release.store(true);
      inside.fetch_sub(1);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(max_inside.load(), 4);
}

TEST(WriterPriorityGateTest, WriterNotStarvedByFreeRunningReaders) {
  WriterPriorityGate gate;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::shared_lock<WriterPriorityGate> lk(gate);
        reads.fetch_add(1);
      }
    });
  }
  // Let the reader storm establish itself first, then write through it.
  // With reader-preferring admission the writer loop would hang behind the
  // free-running readers; writer priority guarantees each acquisition
  // drains in bounded time. Completion of the loop is the assertion.
  while (reads.load() == 0) std::this_thread::yield();
  for (int w = 0; w < 200; ++w) {
    std::unique_lock<WriterPriorityGate> lk(gate);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(WriterPriorityGateTest, TryLockVariants) {
  WriterPriorityGate gate;
  {
    std::shared_lock<WriterPriorityGate> r(gate);
    EXPECT_FALSE(gate.try_lock());      // Reader blocks writer.
    EXPECT_TRUE(gate.try_lock_shared());  // Readers share.
    gate.unlock_shared();
  }
  {
    std::unique_lock<WriterPriorityGate> w(gate);
    EXPECT_FALSE(gate.try_lock());
    EXPECT_FALSE(gate.try_lock_shared());
  }
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

/// The priority rule, end to end and deterministically: once a writer is
/// *queued* (not yet admitted), new readers are refused — try_lock_shared
/// fails, and a blocking lock_shared parks until the writer has entered
/// and left. Every wait point is observed, not slept on.
TEST(WriterPriorityGateTest, QueuedWriterBlocksNewReaders) {
  WriterPriorityGate gate;
  std::atomic<bool> writer_done{false};
  std::atomic<bool> late_reader_in{false};

  gate.lock_shared();  // R0 holds; the writer below must queue behind it.
  std::thread writer([&] {
    std::unique_lock<WriterPriorityGate> w(gate);
    writer_done.store(true);
  });
  // The moment the writer is registered, reader admission must close: spin
  // until try_lock_shared refuses (it cannot refuse for any other reason —
  // the only writer is queued behind our own shared hold).
  while (gate.try_lock_shared()) {
    gate.unlock_shared();
    std::this_thread::yield();
  }
  EXPECT_FALSE(gate.try_lock());  // An active reader also blocks try_lock.

  // A blocking reader arriving behind the queued writer must not enter
  // until the writer has come and gone, no matter how the scheduler
  // interleaves the two waiters.
  std::thread late_reader([&] {
    std::shared_lock<WriterPriorityGate> r(gate);
    EXPECT_TRUE(writer_done.load()) << "reader admitted past a queued writer";
    late_reader_in.store(true);
  });

  gate.unlock_shared();  // Release R0: writer first, then the late reader.
  writer.join();
  late_reader.join();
  EXPECT_TRUE(late_reader_in.load());
  EXPECT_TRUE(gate.try_lock_shared());  // Queue drained: admission reopens.
  gate.unlock_shared();
}

/// Hammers the targeted-wake discipline in unlock/unlock_shared (a queued
/// writer gets one Signal; readers get SignalAll only when no writer is
/// queued). A dropped or misdirected wakeup deadlocks this test; the
/// exclusion counters catch any admission past a live writer.
TEST(WriterPriorityGateTest, SignalChainDrainsWriterConvoysAndReaders) {
  WriterPriorityGate gate;
  std::atomic<int> writers_inside{0};
  std::atomic<bool> violated{false};
  constexpr int kOps = 300;

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {  // Convoys: writers outnumber reader threads.
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        std::unique_lock<WriterPriorityGate> w(gate);
        if (writers_inside.fetch_add(1) != 0) violated.store(true);
        writers_inside.fetch_sub(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        // Alternate blocking and try acquisition so the reader resume path
        // (SignalAll after the last queued writer leaves) and the
        // try-refusal path both run under churn.
        if (i % 2 == 0) {
          std::shared_lock<WriterPriorityGate> r(gate);
          if (writers_inside.load() != 0) violated.store(true);
        } else if (gate.try_lock_shared()) {
          if (writers_inside.load() != 0) violated.store(true);
          gate.unlock_shared();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

}  // namespace
}  // namespace bqe
