#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraints/maintain.h"
#include "constraints/validate.h"
#include "core/engine.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace bqe {
namespace {

/// Property: after any sequence of random inserts/deletes maintained
/// incrementally (Proposition 12), the indices are indistinguishable from
/// indices rebuilt from scratch, and engine answers match the baseline.
class MaintainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaintainPropertyTest, IncrementalEqualsRebuild) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 5);
  Result<GeneratedDataset> ds_r = MakeAirca(0.01, 300 + GetParam());
  ASSERT_TRUE(ds_r.ok());
  GeneratedDataset ds = std::move(*ds_r);

  Result<IndexSet> built = IndexSet::Build(ds.db, ds.schema);
  ASSERT_TRUE(built.ok());
  IndexSet incremental = std::move(*built);

  // Random deltas: inserts of fresh flight rows and deletes of existing
  // ones (keeping the airline-per-airport discipline loose is fine: the
  // kGrow policy absorbs overflows).
  std::vector<Delta> deltas;
  const Table* ontime = ds.db.Get("ontime");
  for (int i = 0; i < 60; ++i) {
    if (rng.Bernoulli(0.5) && ontime->NumRows() > 0) {
      const Tuple& victim = ontime->rows()[rng.PickIndex(ontime->NumRows())];
      deltas.push_back(Delta::Delete("ontime", victim));
      // Apply immediately so later picks see current state.
      Result<MaintenanceStats> st =
          ApplyDeltas(&ds.db, &ds.schema, &incremental, {deltas.back()},
                      OverflowPolicy::kGrow);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    } else {
      Tuple row = {Value::Int(1000000 + i),
                   Value::Int(rng.UniformInt(0, 29)),
                   Value::Int(rng.UniformInt(0, 219)),
                   Value::Int(rng.UniformInt(0, 219)),
                   Value::Int(rng.UniformInt(0, 365)),
                   Value::Int(rng.UniformInt(-10, 180)),
                   Value::Int(rng.UniformInt(-10, 200)),
                   Value::Int(rng.UniformInt(0, 1))};
      deltas.push_back(Delta::Insert("ontime", std::move(row)));
      Result<MaintenanceStats> st =
          ApplyDeltas(&ds.db, &ds.schema, &incremental, {deltas.back()},
                      OverflowPolicy::kGrow);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
  }

  // The grown schema must hold on the final database...
  Result<ValidationReport> report = Validate(ds.db, ds.schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->ToString();

  // ...and the incrementally maintained indices must match a rebuild.
  Result<IndexSet> rebuilt = IndexSet::Build(ds.db, ds.schema);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ(incremental.size(), rebuilt->size());
  for (size_t cid = 0; cid < incremental.size(); ++cid) {
    const AccessIndex* a = incremental.Get(static_cast<int>(cid));
    const AccessIndex* b = rebuilt->Get(static_cast<int>(cid));
    EXPECT_EQ(a->NumEntries(), b->NumEntries()) << "constraint " << cid;
    EXPECT_EQ(a->NumKeys(), b->NumKeys()) << "constraint " << cid;
    EXPECT_EQ(a->MaxGroupSize(), b->MaxGroupSize()) << "constraint " << cid;
  }

  // Spot-check fetch equality on sampled keys from the data.
  const AccessConstraint& c0 = ds.schema.at(0);  // ontime(origin -> ...).
  for (int i = 0; i < 10; ++i) {
    Tuple key = {Value::Int(rng.UniformInt(0, 219))};
    std::vector<Tuple> fa = incremental.Get(0)->Fetch(key);
    std::vector<Tuple> fb = rebuilt->Get(0)->Fetch(key);
    ASSERT_EQ(fa.size(), fb.size()) << c0.ToString();
    for (size_t k = 0; k < fa.size(); ++k) {
      EXPECT_EQ(CompareTuples(fa[k], fb[k]), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintainPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace bqe
