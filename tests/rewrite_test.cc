#include <gtest/gtest.h>

#include "baseline/eval.h"
#include "core/cov.h"
#include "core/rewrite.h"
#include "ra/builder.h"
#include "ra/printer.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ1;
using testutil::MakeQ2;

class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest() : fx_(MakeGraphSearch()) {}

  RewriteResult Rewrite(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    if (!nq.ok()) return RewriteResult{};
    Result<RewriteResult> r = RewriteForCoverage(*nq, fx_.schema);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : RewriteResult{};
  }

  Table Eval(const RaExprPtr& q) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    Result<Table> t = EvaluateBaseline(*nq, fx_.db, nullptr);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(*t) : Table();
  }

  testutil::GraphSearchFixture fx_;
};

TEST_F(RewriteTest, CoveredQueryUnchanged) {
  RewriteResult r = Rewrite(MakeQ1());
  EXPECT_TRUE(r.covered);
  EXPECT_FALSE(r.changed);
  EXPECT_EQ(r.expr.get(), MakeQ1().get() == nullptr ? nullptr : r.expr.get());
}

TEST_F(RewriteTest, Q0BecomesCovered) {
  // The paper's headline transformation: Q0 = Q1 - Q2 -> Q0' = Q1 - Q3.
  RewriteResult r = Rewrite(MakeQ0());
  EXPECT_TRUE(r.changed);
  EXPECT_TRUE(r.covered) << ToAlgebraString(r.expr);
  EXPECT_GE(r.applications, 1);
}

TEST_F(RewriteTest, Q0RewritePreservesSemantics) {
  RewriteResult r = Rewrite(MakeQ0());
  ASSERT_TRUE(r.covered);
  Table original = Eval(MakeQ0());
  Table rewritten = Eval(r.expr);
  EXPECT_TRUE(Table::SameSet(original, rewritten))
      << original.ToString() << "\nvs\n"
      << rewritten.ToString();
  // The known answer: {c2}.
  ASSERT_EQ(rewritten.NumRows(), 1u);
  EXPECT_EQ(rewritten.rows()[0][0], Value::Str("c2"));
}

TEST_F(RewriteTest, HopelessQueryStaysUncovered) {
  // Q2 alone (no difference structure): nothing to rewrite.
  RewriteResult r = Rewrite(MakeQ2());
  EXPECT_FALSE(r.covered);
  EXPECT_FALSE(r.changed);
}

TEST_F(RewriteTest, UncoveredLeftSideNotRepairable) {
  // (Q2 - Q1): the uncovered side is on the left; the semijoin rule does
  // not apply (it would not make Q2's cid reachable).
  RaExprPtr q = Diff(MakeQ2("dineX"), MakeQ1());
  RewriteResult r = Rewrite(q);
  EXPECT_FALSE(r.covered);
}

TEST_F(RewriteTest, UnionOnRightDistributes) {
  // L - (R1 U R2) with R2 uncovered -> (L - R1) - R2, then semijoin on R2.
  RaExprPtr q = Diff(MakeQ1(), Union(testutil::MakeQ3(), MakeQ2("dineu")));
  RewriteResult r = Rewrite(q);
  EXPECT_TRUE(r.covered) << ToAlgebraString(r.expr);
  EXPECT_TRUE(Table::SameSet(Eval(q), Eval(r.expr)));
}

TEST_F(RewriteTest, UnionOnLeftHandled) {
  // (Q1 U Q1') - Q2: superset decomposition must distribute over the union.
  RaExprPtr left = Union(MakeQ1(), CloneWithSuffix(MakeQ1(), "u2"));
  RaExprPtr q = Diff(left, MakeQ2("dineL"));
  RewriteResult r = Rewrite(q);
  EXPECT_TRUE(r.covered) << ToAlgebraString(r.expr);
  EXPECT_TRUE(Table::SameSet(Eval(q), Eval(r.expr)));
}

TEST_F(RewriteTest, NestedDiffOnLeftUsesPositivePart) {
  // (Q1 - Q3) - Q2: L's superset is Q1; rewrite must still be correct.
  RaExprPtr q = Diff(Diff(MakeQ1(), testutil::MakeQ3()), MakeQ2("dineZ"));
  RewriteResult r = Rewrite(q);
  EXPECT_TRUE(r.covered) << ToAlgebraString(r.expr);
  EXPECT_TRUE(Table::SameSet(Eval(q), Eval(r.expr)));
}

TEST_F(RewriteTest, RewrittenQueryNormalizes) {
  RewriteResult r = Rewrite(MakeQ0());
  ASSERT_TRUE(r.covered);
  EXPECT_TRUE(Normalize(r.expr, fx_.db.catalog()).ok());
}

TEST_F(RewriteTest, IdempotentOnRewrittenResult) {
  RewriteResult first = Rewrite(MakeQ0());
  ASSERT_TRUE(first.covered);
  RewriteResult second = Rewrite(first.expr);
  EXPECT_TRUE(second.covered);
  EXPECT_FALSE(second.changed);
}

TEST_F(RewriteTest, SemanticsPreservedOnExtendedData) {
  // Grow the dataset and re-check A-equivalence of the rewritten Q0.
  for (int i = 0; i < 40; ++i) {
    std::string f = "fextra_" + std::to_string(i);
    ASSERT_TRUE(fx_.db.Insert("friend", {Value::Str("p0"), Value::Str(f)}).ok());
    ASSERT_TRUE(fx_.db
                    .Insert("dine", {Value::Str(f), Value::Str("c3"),
                                     Value::Int(5), Value::Int(2015)})
                    .ok());
    ASSERT_TRUE(fx_.db
                    .Insert("dine", {Value::Str(f), Value::Str("c4"),
                                     Value::Int(5), Value::Int(2015)})
                    .ok());
  }
  RewriteResult r = Rewrite(MakeQ0());
  ASSERT_TRUE(r.covered);
  EXPECT_TRUE(Table::SameSet(Eval(MakeQ0()), Eval(r.expr)));
}

}  // namespace
}  // namespace bqe
