#include <gtest/gtest.h>

#include "baseline/eval.h"
#include "ra/builder.h"
#include "ra/parser.h"
#include "testutil.h"

namespace bqe {
namespace {

using testutil::MakeGraphSearch;
using testutil::MakeQ0;
using testutil::MakeQ0Prime;
using testutil::MakeQ1;
using testutil::MakeQ2;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : fx_(MakeGraphSearch()) {}

  Table Eval(const RaExprPtr& q, BaselineStats* stats = nullptr) {
    Result<NormalizedQuery> nq = Normalize(q, fx_.db.catalog());
    EXPECT_TRUE(nq.ok()) << nq.status().ToString();
    Result<Table> t = EvaluateBaseline(*nq, fx_.db, stats);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(*t) : Table();
  }

  Table EvalSql(const std::string& sql) {
    Result<RaExprPtr> q = ParseQuery(sql, fx_.db.catalog());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return Eval(*q);
  }

  static std::set<std::string> Strings(const Table& t, size_t col = 0) {
    std::set<std::string> out;
    for (const Tuple& row : t.rows()) out.insert(row[col].AsString());
    return out;
  }

  testutil::GraphSearchFixture fx_;
};

TEST_F(BaselineTest, ScanWholeRelation) {
  BaselineStats stats;
  Table t = Eval(Rel("cafe"), &stats);
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(stats.tuples_scanned, 4u);
}

TEST_F(BaselineTest, SelectionFilter) {
  Table t = EvalSql("SELECT cid FROM cafe WHERE city = 'nyc'");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1", "c2", "c4"}));
}

TEST_F(BaselineTest, NonEqualityPredicates) {
  Table t = EvalSql("SELECT cid FROM dine WHERE month < 3");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1", "c4"}));
}

TEST_F(BaselineTest, ProjectionDeduplicates) {
  Table t = EvalSql("SELECT city FROM cafe");
  EXPECT_EQ(t.NumRows(), 2u);  // nyc, sf.
}

TEST_F(BaselineTest, TwoWayJoin) {
  Table t = EvalSql(
      "SELECT cafe.city FROM dine, cafe "
      "WHERE dine.cid = cafe.cid AND dine.pid = 'p0'");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"nyc"}));
}

TEST_F(BaselineTest, Q1FriendsOfP0NycMay2015) {
  // The paper's Q1: restaurants in nyc where p0's friends dined may 2015.
  Table t = Eval(MakeQ1());
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1", "c2"}));
}

TEST_F(BaselineTest, Q2RestaurantsOfP0) {
  Table t = Eval(MakeQ2());
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1", "c4"}));
}

TEST_F(BaselineTest, Q0DiffSemantics) {
  // Q0 = Q1 - Q2 = {c1, c2} - {c1, c4} = {c2}.
  Table t = Eval(MakeQ0());
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c2"}));
}

TEST_F(BaselineTest, Q0PrimeEquivalentToQ0) {
  Table q0 = Eval(MakeQ0());
  Table q0p = Eval(MakeQ0Prime());
  EXPECT_TRUE(Table::SameSet(q0, q0p));
}

TEST_F(BaselineTest, UnionDeduplicates) {
  Table t = EvalSql(
      "(SELECT cid FROM dine WHERE pid = 'p0') UNION "
      "(SELECT d2.cid FROM dine AS d2 WHERE d2.pid = 'f1')");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1", "c2", "c4"}));
}

TEST_F(BaselineTest, IntersectViaParser) {
  Table t = EvalSql(
      "(SELECT cid FROM dine WHERE pid = 'p0') INTERSECT "
      "(SELECT d2.cid FROM dine AS d2 WHERE d2.pid = 'f1')");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c1"}));
}

TEST_F(BaselineTest, CrossProductWithoutPredicates) {
  BaselineStats stats;
  Table t = Eval(Product(Rel("cafe"), RelAs("cafe", "c2")), &stats);
  EXPECT_EQ(t.NumRows(), 16u);
  EXPECT_EQ(t.schema().arity(), 4u);
}

TEST_F(BaselineTest, SelfJoin) {
  // Friends of friends of p0: friend(p0, x) |x| friend(x, y).
  Table t = EvalSql(
      "SELECT f2.fid FROM friend f1, friend f2 "
      "WHERE f1.pid = 'p0' AND f1.fid = f2.pid");
  EXPECT_EQ(Strings(t), (std::set<std::string>{"f2"}));
}

TEST_F(BaselineTest, EmptyResultOnUnsatisfiableSelection) {
  Table t = EvalSql("SELECT cid FROM cafe WHERE city = 'atlantis'");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(BaselineTest, ScanCountGrowsWithJoins) {
  BaselineStats one, two;
  Eval(Rel("dine"), &one);
  Result<RaExprPtr> q = ParseQuery(
      "SELECT dine.cid FROM dine, cafe WHERE dine.cid = cafe.cid",
      fx_.db.catalog());
  ASSERT_TRUE(q.ok());
  Eval(*q, &two);
  EXPECT_EQ(two.tuples_scanned, one.tuples_scanned + 4u);
}

TEST_F(BaselineTest, SelectAboveUnionApplies) {
  auto u = Union(Project(Rel("cafe"), {A("cafe", "cid"), A("cafe", "city")}),
                 Project(RelAs("cafe", "k"), {A("k", "cid"), A("k", "city")}));
  auto q = Project(Select(u, {EqC(A("cafe", "city"), Value::Str("sf"))}),
                   {A("cafe", "cid")});
  Table t = Eval(q);
  EXPECT_EQ(Strings(t), (std::set<std::string>{"c3"}));
}

TEST_F(BaselineTest, DiffWithEmptyRight) {
  Table t = EvalSql(
      "(SELECT cid FROM cafe) EXCEPT "
      "(SELECT d.cid FROM dine AS d WHERE d.pid = 'nobody')");
  EXPECT_EQ(t.NumRows(), 4u);
}

TEST_F(BaselineTest, DuplicateConstantPredicatesConflict) {
  Table t = EvalSql("SELECT cid FROM cafe WHERE city = 'nyc' AND city = 'sf'");
  EXPECT_EQ(t.NumRows(), 0u);
}

}  // namespace
}  // namespace bqe
