#!/usr/bin/env bash
# One-command local run of the static-analysis lane (mirrors the CI
# `static-analysis` job):
#
#   tools/static_analysis.sh
#
# Stages, each skipped with a notice when its toolchain is absent:
#   1. lock-discipline lint (always — needs only python3)
#   2. clang build with -Werror=thread-safety + full ctest
#   3. clang-tidy (curated .clang-tidy profile) over src/
#   4. ASan+UBSan build + full ctest (any compiler)
#
# Logs land in build-analysis/logs/ — the same files CI uploads as
# artifacts. Exit status is non-zero if any stage that ran failed.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
LOGS="$ROOT/build-analysis/logs"
mkdir -p "$LOGS"
failed=0
note() { printf '== %s\n' "$*"; }

# ---- 1. lock-discipline lint -------------------------------------------
note "lint_concurrency over src/"
if python3 "$ROOT/tools/lint_concurrency.py" | tee "$LOGS/lint_concurrency.log"; then
  :
else
  failed=1
fi

# ---- 2. clang thread-safety build + tests ------------------------------
if command -v clang++ >/dev/null 2>&1; then
  note "clang -Werror=thread-safety build + ctest"
  if cmake -B "$ROOT/build-analysis/clang" -S "$ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        > "$LOGS/clang_configure.log" 2>&1 \
     && cmake --build "$ROOT/build-analysis/clang" -j"$(nproc)" \
        > "$LOGS/clang_build.log" 2>&1 \
     && ctest --test-dir "$ROOT/build-analysis/clang" --output-on-failure \
        -j"$(nproc)" > "$LOGS/clang_ctest.log" 2>&1; then
    echo "clang thread-safety lane: OK"
  else
    echo "clang thread-safety lane: FAILED (see $LOGS/clang_*.log)"
    failed=1
  fi

  # ---- 3. clang-tidy ----------------------------------------------------
  if command -v run-clang-tidy >/dev/null 2>&1; then
    note "clang-tidy over src/"
    if run-clang-tidy -quiet -p "$ROOT/build-analysis/clang" \
          "$ROOT/src/.*" > "$LOGS/clang_tidy.log" 2>&1; then
      echo "clang-tidy: OK"
    else
      echo "clang-tidy: FAILED (see $LOGS/clang_tidy.log)"
      failed=1
    fi
  else
    note "run-clang-tidy not found; skipping clang-tidy stage"
  fi
else
  note "clang++ not found; skipping thread-safety and clang-tidy stages" \
       "(CI runs them — annotations are no-ops under gcc)"
fi

# ---- 4. sanitizers ------------------------------------------------------
note "ASan+UBSan build + ctest"
if cmake -B "$ROOT/build-analysis/san" -S "$ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
      > "$LOGS/san_configure.log" 2>&1 \
   && cmake --build "$ROOT/build-analysis/san" -j"$(nproc)" \
      > "$LOGS/san_build.log" 2>&1 \
   && ctest --test-dir "$ROOT/build-analysis/san" --output-on-failure \
      -j"$(nproc)" > "$LOGS/san_ctest.log" 2>&1; then
  echo "sanitizer lane: OK"
else
  echo "sanitizer lane: FAILED (see $LOGS/san_*.log)"
  failed=1
fi

if [ "$failed" -ne 0 ]; then
  note "static analysis: FAILURES (logs in $LOGS)"
else
  note "static analysis: all stages that ran are clean (logs in $LOGS)"
fi
exit "$failed"
