#!/usr/bin/env python3
"""Lock-discipline lint for the bqe source tree.

Three rules, enforced over src/ (see tools/static_analysis.sh and the CI
static-analysis job):

  1. memory-order   Every std::atomic access — .load()/.store()/RMW method
                    calls, and operator forms (++, --, +=, assignment) on
                    variables declared std::atomic — must name an explicit
                    std::memory_order. Defaulted seq_cst hides the author's
                    intent: an unannotated access is indistinguishable from
                    one that was never thought about.
  2. naked-mutex    std::mutex / std::shared_mutex (and friends) may appear
                    only under src/common/: everything else must use the
                    annotated bqe::Mutex / WriterPriorityGate wrappers so
                    clang's capability analysis can see the locking.
  3. bare-wait      Condition-variable waits must carry a predicate or be an
                    explicit while-loop re-test. A bare `cv.wait(lk)` with no
                    loop is a lost-wakeup / spurious-wakeup bug waiting to
                    happen. (bqe::CondVar::Wait is predicate-free by design —
                    the clang analysis cannot see through predicate lambdas —
                    so its call sites are required to sit inside a while
                    loop; this rule polices the std:: form.)

A line may be exempted with a trailing `// lint:allow-concurrency(<rule>)`
comment, but suppressions are honored ONLY under src/common/ — that is where
the sanctioned primitives live, and the one place allowed to touch the raw
std:: machinery. A suppression anywhere else is itself reported as a
violation, so the suppression budget outside src/common/ is structurally
zero.

Usage: tools/lint_concurrency.py [path ...]     (default: src/)
Exit status: 0 clean, 1 violations found.
"""

import os
import re
import sys

# Atomic member functions that perform a load, store, or RMW and take an
# optional trailing std::memory_order argument.
ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    # atomic_flag's test_and_set is listed; its `clear` is not — that name
    # collides with every container in the tree, and the codebase has no
    # atomic_flag. Revisit if one ever appears.
    "test_and_set",
)

ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)(" + "|".join(ATOMIC_METHODS) + r")\s*\("
)

# `std::atomic<...> name` / `std::atomic_bool name` declarations; used to
# catch operator-form accesses (++x, x += d, x = v) that bypass the method
# syntax and silently default to seq_cst.
ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic(?:<[^;{}]*>|_\w+)?\s+(\w+)\s*[{=(;]"
)

NAKED_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std\s*::\s*condition_variable\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\b"
)

WAIT_CALL_RE = re.compile(r"(?:\.|->)(wait)\s*\(")

SUPPRESS_RE = re.compile(r"//\s*lint:allow-concurrency\((memory-order|naked-mutex|bare-wait)\)")

COMMENT_RE = re.compile(r"//.*$")


def strip_strings_and_line_comments(line):
    """Blanks out string/char literals and // comments (keeps length)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" " if c != in_str else c)
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # Rest of line is a comment.
        else:
            out.append(c)
        i += 1
    return "".join(out)


class FileScanner:
    """One file's lines with comments/strings stripped, plus block-comment
    state carried across lines, so the rules see only code."""

    def __init__(self, path, raw_lines):
        self.path = path
        self.raw = raw_lines
        self.code = []
        in_block = False
        for line in raw_lines:
            kept = []
            i, n = 0, len(line)
            while i < n:
                if in_block:
                    end = line.find("*/", i)
                    if end < 0:
                        i = n
                    else:
                        in_block = False
                        i = end + 2
                    continue
                start = line.find("/*", i)
                if start < 0:
                    kept.append(line[i:])
                    break
                kept.append(line[i:start])
                in_block = True
                i = start + 2
            self.code.append(strip_strings_and_line_comments("".join(kept)))

    def balanced_args(self, line_idx, open_pos):
        """Returns (argtext, top_level_commas) for the paren group opening at
        code[line_idx][open_pos], following continuation lines."""
        depth = 0
        args = []
        commas = 0
        li, ci = line_idx, open_pos
        while li < len(self.code):
            line = self.code[li]
            while ci < len(line):
                c = line[ci]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    depth -= 1
                    if depth == 0:
                        return "".join(args), commas
                elif c == "," and depth == 1:
                    commas += 1
                if depth >= 1 and not (depth == 1 and c == "("):
                    args.append(c)
                ci += 1
            args.append(" ")
            li += 1
            ci = 0
        return "".join(args), commas  # Unbalanced (EOF): best effort.


def in_common(path):
    norm = path.replace(os.sep, "/")
    return "/src/common/" in norm or norm.startswith("src/common/")


def scan_file(path):
    violations = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [(path, 0, "io", str(e))]
    sc = FileScanner(path, raw)
    allowed_here = in_common(path)

    suppressed = {}  # line index -> rule name
    for idx, line in enumerate(raw):
        m = SUPPRESS_RE.search(line)
        if m:
            if allowed_here:
                suppressed[idx] = m.group(1)
            else:
                violations.append(
                    (path, idx + 1, "suppression",
                     "lint:allow-concurrency is honored only under "
                     "src/common/ — fix the code instead")
                )

    atomic_names = set()
    for line in sc.code:
        for m in ATOMIC_DECL_RE.finditer(line):
            atomic_names.add(m.group(1))

    atomic_op_res = []
    for name in atomic_names:
        atomic_op_res.append(
            (name,
             re.compile(
                 r"(\+\+|--)\s*" + re.escape(name) + r"\b"
                 r"|\b" + re.escape(name) + r"\s*(\+\+|--|\+=|-=|\|=|&=|\^=)"
                 r"|\b" + re.escape(name) + r"\s*=(?![=])"))
        )

    for idx, line in enumerate(sc.code):
        # Rule 1a: method-form atomic accesses must name a memory_order.
        for m in ATOMIC_CALL_RE.finditer(line):
            open_pos = line.find("(", m.end() - 1)
            args, _ = sc.balanced_args(idx, open_pos)
            if "memory_order" not in args:
                if suppressed.get(idx) == "memory-order":
                    continue
                violations.append(
                    (path, idx + 1, "memory-order",
                     f".{m.group(1)}() without an explicit std::memory_order")
                )

        # Rule 1b: operator-form accesses on declared atomics.
        for name, op_re in atomic_op_res:
            m = op_re.search(line)
            if m is None:
                continue
            # Skip the declaration line itself: `std::atomic<int> x = 0;`
            # is construction, not an ordered access.
            if ATOMIC_DECL_RE.search(line):
                continue
            if suppressed.get(idx) == "memory-order":
                continue
            violations.append(
                (path, idx + 1, "memory-order",
                 f"operator access on std::atomic '{name}' (implicit "
                 "seq_cst); use .load/.store/.fetch_* with an explicit "
                 "std::memory_order")
            )

        # Rule 2: raw std:: locking vocabulary outside src/common/.
        m = NAKED_MUTEX_RE.search(line)
        if m and not allowed_here:
            if suppressed.get(idx) == "naked-mutex":
                continue  # Unreachable outside common; kept for symmetry.
            violations.append(
                (path, idx + 1, "naked-mutex",
                 f"'{m.group(0)}' outside src/common/ — use bqe::Mutex / "
                 "bqe::MutexLock / WriterPriorityGate so the capability "
                 "analysis can see the locking")
            )
        elif m and allowed_here and suppressed.get(idx) != "naked-mutex" \
                and "mutex.h" not in os.path.basename(path) \
                and "rw_gate.h" not in os.path.basename(path):
            violations.append(
                (path, idx + 1, "naked-mutex",
                 f"'{m.group(0)}' in src/common/ outside the sanctioned "
                 "wrappers; annotate it or add "
                 "lint:allow-concurrency(naked-mutex)")
            )

        # Rule 3: predicate-free waits.
        for m in WAIT_CALL_RE.finditer(line):
            open_pos = line.find("(", m.end() - 1)
            _, commas = sc.balanced_args(idx, open_pos)
            if commas == 0:
                if suppressed.get(idx) == "bare-wait":
                    continue
                violations.append(
                    (path, idx + 1, "bare-wait",
                     ".wait() without a predicate — pass one, or re-test "
                     "the condition in a while loop around bqe::CondVar::"
                     "Wait")
                )

    return violations


def collect_files(paths):
    exts = (".h", ".hpp", ".cc", ".cpp", ".cxx")
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
            continue
        for root, _dirs, files in os.walk(p):
            for f in sorted(files):
                if f.endswith(exts):
                    out.append(os.path.join(root, f))
    return out


def main(argv):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = argv[1:] or [os.path.join(repo, "src")]
    files = collect_files(paths)
    if not files:
        print("lint_concurrency: no input files", file=sys.stderr)
        return 1
    violations = []
    for f in files:
        violations.extend(scan_file(f))
    for path, lineno, rule, msg in violations:
        rel = os.path.relpath(path, repo)
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"lint_concurrency: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_concurrency: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
